"""Section III-D — heuristic-solver execution time vs candidate-set size.

The paper reports ~20 minutes for 50-100 candidate locations and an
exponential blow-up towards the full 1373-location set, which is why the
filtering step exists.  This benchmark measures our heuristic end-to-end for
growing candidate sets — including the paper's full 1373-location scale in
``EXTENDED_COUNTS`` — and also ablates the epoch-grid resolution (a design
choice called out in DESIGN.md).

Since PR 3 the benchmark configuration runs the search through the adaptive
epoch-grid scheme (``coarse_epoch_factor``): the filter and annealing chains
price every LP on a 4x coarser grid, and the winning siting is re-solved on
selectively refined grids until the objective converges — the final cost is
still reported against (and converges to) the fine 3-hour grid.
"""

import time

import pytest

from conftest import print_header
from repro.core import EnergySources, HeuristicSolver, SearchSettings, SitingProblem, StorageMode
from repro.core.parameters import FrameworkParameters
from repro.energy import EpochGrid, ProfileBuilder
from repro.weather import build_world_catalog

CANDIDATE_COUNTS = (12, 30, 60)

#: The extended scaling curve toward the paper's full candidate set; run once
#: per harness invocation (no best-of rounds — the big points are stable).
EXTENDED_COUNTS = (240, 600, 1373)

#: Catalogue-scale points beyond the paper's 1373 locations, drawn from the
#: dense deterministic grid catalogue (``repro.geo.synthetic``).  The
#: two-stage filter is what makes these tractable: the vectorized screen
#: prices only the provable shortlist contenders exactly.
SYNTHETIC_COUNTS = (5000, 20000)

#: Coarsening factor of the adaptive epoch-grid scheme used by the benchmark
#: configuration (the fine grid stays the 3-hour one the costs are quoted on).
COARSE_EPOCH_FACTOR = 4


def run_heuristic(
    num_candidates: int,
    hours_per_epoch: int = 3,
    coarse_epoch_factor: int = COARSE_EPOCH_FACTOR,
    executor: str = "thread",
    workers: int = None,
    synthetic_grid: bool = False,
) -> dict:
    if synthetic_grid:
        from repro.geo.synthetic import build_grid_catalog

        catalog = build_grid_catalog(num_candidates, seed=2014)
    else:
        catalog = build_world_catalog(num_locations=num_candidates, seed=2014)
    builder = ProfileBuilder(catalog)
    grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=hours_per_epoch)
    profiles = builder.build_all(grid)
    problem = SitingProblem(
        profiles=profiles,
        params=FrameworkParameters(total_capacity_kw=50_000.0, min_green_fraction=0.5),
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
    )
    settings = SearchSettings(
        keep_locations=10,
        max_iterations=15,
        patience=8,
        num_chains=1,
        seed=1,
        coarse_epoch_factor=coarse_epoch_factor,
        executor=executor,
        max_workers=workers,
    )
    started = time.perf_counter()
    solution = HeuristicSolver(problem, settings).solve()
    elapsed = time.perf_counter() - started
    requests = solution.evaluations + solution.cache_hits
    return {
        "candidates": num_candidates,
        "elapsed_s": elapsed,
        "evaluations": solution.evaluations,
        "cache_hits": solution.cache_hits,
        "cache_hit_rate": solution.cache_hits / requests if requests else 0.0,
        "cross_chain_hits": solution.stats.get("memo_cross_chain_hits", 0.0),
        "filter_seconds": solution.stats.get("filter_seconds", float("nan")),
        "search_seconds": solution.stats.get("search_seconds", float("nan")),
        "refine_rounds": solution.stats.get("refine_rounds", 0.0),
        "filter_priced": solution.stats.get("filter_priced", float("nan")),
        "filter_screen_rate": solution.stats.get("filter_screen_rate", float("nan")),
        "cost_musd": solution.monthly_cost / 1e6,
        "feasible": solution.feasible,
    }


@pytest.mark.parametrize("num_candidates", CANDIDATE_COUNTS)
def test_sec3d_heuristic_scaling(benchmark, num_candidates):
    result = benchmark.pedantic(run_heuristic, args=(num_candidates,), rounds=1, iterations=1)

    print_header(f"Section III-D: heuristic solver over {num_candidates} candidate locations")
    print(f"wall-clock: {result['elapsed_s']:.2f} s "
          f"(filter {result['filter_seconds']:.2f} s, search {result['search_seconds']:.2f} s), "
          f"LP evaluations: {result['evaluations']}, cache hits: {result['cache_hits']}, "
          f"best cost: ${result['cost_musd']:.1f}M/month")
    print(
        "paper scale: tens of minutes for 50-100 locations on 2011 hardware, growing "
        "exponentially without filtering; the shape to match is 'filtering keeps it tractable'"
    )
    assert result["feasible"]


@pytest.mark.parametrize("num_candidates", EXTENDED_COUNTS)
@pytest.mark.slow
def test_sec3d_heuristic_scaling_extended(benchmark, num_candidates):
    """The scaling curve extended toward the paper's 1373 candidates."""
    result = benchmark.pedantic(run_heuristic, args=(num_candidates,), rounds=1, iterations=1)

    print_header(f"Section III-D extended: {num_candidates} candidate locations")
    print(f"wall-clock: {result['elapsed_s']:.2f} s "
          f"(filter {result['filter_seconds']:.2f} s, search {result['search_seconds']:.2f} s), "
          f"LP evaluations: {result['evaluations']}, best cost: ${result['cost_musd']:.1f}M/month")
    print(f"filter: {result['filter_priced']:.0f} of {num_candidates} candidates priced exactly "
          f"(screen survival {100 * result['filter_screen_rate']:.1f} %)")
    assert result["feasible"]


@pytest.mark.parametrize("num_candidates", SYNTHETIC_COUNTS)
@pytest.mark.slow
def test_sec3d_catalogue_scale(benchmark, num_candidates):
    """Beyond the paper: 5k/20k-candidate catalogues through the screen.

    The point of the two-stage filter — the exact-pricing count should stay
    near-flat while the catalogue grows, leaving a near-linear (vectorized
    screen dominated) filter-time curve.
    """
    result = benchmark.pedantic(
        run_heuristic,
        args=(num_candidates,),
        kwargs={"synthetic_grid": True},
        rounds=1,
        iterations=1,
    )

    print_header(f"Catalogue scale: {num_candidates} synthetic grid candidates")
    print(f"wall-clock: {result['elapsed_s']:.2f} s "
          f"(filter {result['filter_seconds']:.2f} s, search {result['search_seconds']:.2f} s), "
          f"LP evaluations: {result['evaluations']}, best cost: ${result['cost_musd']:.1f}M/month")
    print(f"filter: {result['filter_priced']:.0f} of {num_candidates} candidates priced exactly "
          f"(screen survival {100 * result['filter_screen_rate']:.1f} %)")
    assert result["feasible"]
    # The screen must keep exact pricing to a small fraction of the catalogue.
    assert result["filter_priced"] <= 0.25 * num_candidates


def test_sec3d_epoch_resolution_ablation(benchmark):
    """Ablation: 3-hour vs 1-hour epochs on the same 30-location instance.

    Both arms run the *plain* fine-grid search (``coarse_epoch_factor=1``) so
    the comparison stays a pure grid-resolution ablation, independent of the
    adaptive scheme the benchmark configuration uses.
    """
    coarse = benchmark.pedantic(
        run_heuristic, args=(30, 3, 1), rounds=1, iterations=1
    )
    fine = run_heuristic(30, 1, 1)

    print_header("Ablation: epoch-grid resolution (30 candidate locations)")
    print(f"3-hour epochs: {coarse['elapsed_s']:.1f} s, cost ${coarse['cost_musd']:.1f}M/month")
    print(f"1-hour epochs: {fine['elapsed_s']:.1f} s, cost ${fine['cost_musd']:.1f}M/month")
    print("finer epochs cost more solver time for a small change in the optimised cost")

    assert coarse["feasible"] and fine["feasible"]
    # The optimised costs should agree within a reasonable band; the fine grid is slower.
    assert abs(fine["cost_musd"] - coarse["cost_musd"]) / coarse["cost_musd"] < 0.25
