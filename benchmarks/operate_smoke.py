"""Operate smoke check: a short rolling-horizon replay must stay incremental.

Wall-clock on shared CI runners is too noisy to gate on, so this pins the
structural counters of the ``operate-smoke`` scenario instead, which are
deterministic for a fixed spec:

* the dispatch loop performs exactly one cold LP load per policy replay and
  slides the window in place for every further step (the acceptance
  criterion of the operator subsystem — no full rebuilds on the hot path);
* the LP-solve count equals the step count (one window solve per step); and
* a second run of the sweep is served entirely from the artifact cache.

Usage::

    PYTHONPATH=src python benchmarks/operate_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import ExperimentRunner, get_scenario  # noqa: E402


def main() -> int:
    sweep = get_scenario("operate-smoke").build()
    steps = sweep.base.operate["steps"]
    with tempfile.TemporaryDirectory(prefix="operate-smoke-") as cache_dir:
        started = time.perf_counter()
        results = ExperimentRunner(cache_dir=cache_dir).run(sweep)
        elapsed = time.perf_counter() - started
        print(
            f"operate-smoke: {len(results)} points in {elapsed:.2f}s "
            f"({steps} steps each, horizon {sweep.base.operate['horizon_hours']} h)"
        )
        for point in results:
            record = point.record
            label = ", ".join(f"{k}={v}" for k, v in point.overrides.items())
            print(
                f"  [{label}] forecast ${record['forecast_cost_usd']:,.2f} vs "
                f"oracle ${record['oracle_cost_usd']:,.2f} "
                f"({record['regret_cost_pct']:+.2f} % regret); "
                f"{record['lp_solves']} LP solves, {record['cold_loads']} cold, "
                f"{record['slides']} slides, "
                f"{100 * record['warm_start_rate']:.0f} % warm"
            )
            if not record["feasible"]:
                print("FAIL: the operate-smoke plan became infeasible")
                return 1
            for policy in ("forecast", "oracle"):
                stats = record[policy]
                if stats["cold_loads"] != 1:
                    print(
                        f"FAIL: {policy} replay performed {stats['cold_loads']} cold "
                        "LP loads — the horizon slide is rebuilding instead of splicing"
                    )
                    return 1
                if stats["lp_solves"] != steps or stats["slides"] != steps - 1:
                    print(
                        f"FAIL: {policy} replay solved {stats['lp_solves']} LPs over "
                        f"{stats['slides']} slides; expected {steps} and {steps - 1}"
                    )
                    return 1

        cached = ExperimentRunner(cache_dir=cache_dir).run(sweep)
        if cached.cache_hits != len(results):
            print(
                f"FAIL: second run hit the artifact cache {cached.cache_hits}/"
                f"{len(results)} times — operate records are not cache-stable"
            )
            return 1
        for fresh, replayed in zip(results, cached):
            if fresh.record != replayed.record:
                print("FAIL: cached operate record differs from the computed one")
                return 1
    print("operate smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
