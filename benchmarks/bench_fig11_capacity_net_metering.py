"""Fig. 11 — total provisioned compute capacity vs green percentage (net metering)."""

from conftest import BENCH_CAPACITY_KW, print_header
from repro.analysis.figures import GREEN_FRACTIONS, figure11_capacity_vs_green
from repro.analysis import format_table, series_to_rows
from repro.core import StorageMode


def test_fig11_capacity_vs_green_net_metering(benchmark, sweeps):
    results = benchmark.pedantic(
        sweeps.sweep, args=(StorageMode.NET_METERING,), rounds=1, iterations=1
    )
    capacities = figure11_capacity_vs_green(results)

    print_header("Figure 11: provisioned compute capacity vs green percentage (net metering), MW")
    rows = series_to_rows(capacities, "green_pct", [int(100 * f) for f in GREEN_FRACTIONS])
    print(format_table(rows))
    print(
        "paper shape: with storage there is very little idleness — the provisioned "
        "capacity stays at (or very near) the 50 MW minimum for every green percentage"
    )

    minimum_mw = BENCH_CAPACITY_KW / 1000.0
    for label in ("wind", "wind_and_or_solar"):
        for capacity in capacities[label]:
            assert capacity >= minimum_mw - 1e-3
            assert capacity <= minimum_mw * 1.3  # little over-provisioning with storage
