"""Catalogue-scale filter smoke: one 5000-candidate synthetic-grid plan.

Runs the Section III-D configuration over a 5000-location catalogue from the
dense deterministic grid (:mod:`repro.geo.synthetic`) — well past the paper's
1373 — and gates on the two-stage filter's exact-pricing count: the
vectorized admissible screen must keep the number of candidates priced by an
LP to a small, catalogue-size-independent set.  Wall-clock is printed for the
record but not gated (shared runners are too noisy); the count is
deterministic.

Usage::

    PYTHONPATH=src python benchmarks/filter_scale_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sec3d_solver_scaling import run_heuristic  # noqa: E402

#: Catalogue size of the smoke point.
NUM_CANDIDATES = 5000

#: Ceiling on exactly-priced filter candidates (currently ~192, independent
#: of the catalogue size: a galloping round schedule prices the bound-sorted
#: head until the shortlist thresholds prune the tail).
FILTER_PRICED_CEILING = 600


def main() -> int:
    result = run_heuristic(NUM_CANDIDATES, synthetic_grid=True)
    priced = result["filter_priced"]
    print(
        f"catalogue {NUM_CANDIDATES} candidates: {result['elapsed_s']:.2f}s "
        f"(filter {result['filter_seconds']:.3f}s, search {result['search_seconds']:.2f}s), "
        f"filter priced {priced:.0f} exactly (ceiling {FILTER_PRICED_CEILING}), "
        f"survival {100 * result['filter_screen_rate']:.2f} %, "
        f"cost ${result['cost_musd']:.2f}M/month, feasible={result['feasible']}"
    )
    if not result["feasible"]:
        print("FAIL: the 5000-location smoke instance became infeasible")
        return 1
    if priced > FILTER_PRICED_CEILING:
        print(
            f"FAIL: the filter priced {priced:.0f} candidates exactly, above the "
            f"{FILTER_PRICED_CEILING} ceiling — the screen stopped pruning at scale"
        )
        return 1
    print("filter scale smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
