"""Fig. 4 — PUE as a function of external temperature."""

from conftest import print_header
from repro.analysis import figure4_pue_curve


def test_fig04_pue_curve(benchmark):
    data = benchmark(figure4_pue_curve)

    print_header("Figure 4: PUE vs external temperature")
    print(f"{'temperature C':>14}  {'PUE':>6}")
    for temperature, pue in zip(data["temperature_c"][::5], data["pue"][::5]):
        print(f"{temperature:>14.0f}  {pue:>6.3f}")
    print("paper shape: ~1.05 with free cooling, rising to ~1.4 at 45 C")

    assert abs(data["pue"][0] - 1.05) < 0.02
    assert abs(data["pue"][-1] - 1.40) < 0.02
    assert all(b >= a for a, b in zip(data["pue"], data["pue"][1:]))
