"""Perf-trajectory harness: run the solver benchmarks, append to BENCH_solver.json.

Runs the Section III-D heuristic-solver scaling benchmark and the Section V-C
scheduler-timing benchmark without pytest and records wall-clock per stage,
LP counts and cache hit rates to ``BENCH_solver.json`` next to this file.

The record is a *trajectory*: each invocation appends one entry (git revision,
date, per-stage timings) to the ``entries`` list instead of overwriting the
file, so successive PRs accumulate a machine-readable perf history.  The
committed file additionally carries the measured numbers of the seed
implementation (``baseline_seed``) that every entry's speedup is computed
against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from bench_sec3d_solver_scaling import (  # noqa: E402
    CANDIDATE_COUNTS,
    EXTENDED_COUNTS,
    SYNTHETIC_COUNTS,
    run_heuristic,
)
from bench_sec5c_scheduler_timing import SCALES_MW, SETUPS, build_scheduler  # noqa: E402

from repro.parallel import available_cpu_count  # noqa: E402
from repro.scenarios import ExperimentRunner, ParameterSweep, get_scenario  # noqa: E402

#: Seed-implementation numbers (commit b4313fa), measured on the same
#: 1-CPU container this harness first ran on: sequential chains, dict-based
#: LinearExpression model assembly, dense linprog backend.
BASELINE_SEED = {
    "sec3d_heuristic_scaling": {
        "12": {"elapsed_s": 0.396, "evaluations": 9},
        "30": {"elapsed_s": 0.592, "evaluations": 8},
        "60": {"elapsed_s": 0.856, "evaluations": 9},
    },
    "sec5c_scheduler_timing_ms": {"50MW": 11.0, "200MW": 11.0},
}

#: Keys a trajectory entry carries besides the benchmark results.
_ENTRY_META_KEYS = ("revision", "date", "machine", "rounds", "harness_seconds")


def bench_sec3d(rounds: int = 2, extended: bool = True) -> dict:
    """Best-of-``rounds`` per scale point, to damp container CPU jitter.

    The ``EXTENDED_COUNTS`` points (240/600/1373 candidates — up to the
    paper's full set) run a single round each; their wall-clock is dominated
    by the 1000+ filter-pricing LPs, which are stable.
    """
    results = {}
    points = [(count, rounds) for count in CANDIDATE_COUNTS]
    if extended:
        points.extend((count, 1) for count in EXTENDED_COUNTS)
    for count, point_rounds in points:
        result = min(
            (run_heuristic(count) for _ in range(point_rounds)),
            key=lambda r: r["elapsed_s"],
        )
        results[str(count)] = _sec3d_record(result)
        print(
            f"sec3d {count:>4} candidates: {result['elapsed_s']:.3f}s "
            f"(filter {result['filter_seconds']:.3f}s / search {result['search_seconds']:.3f}s), "
            f"{result['evaluations']} LPs, {result['cache_hits']} cache hits, "
            f"filter priced {result['filter_priced']:.0f} "
            f"({100 * result['filter_screen_rate']:.1f} % survival)"
        )
    return results


def _sec3d_record(result: dict) -> dict:
    return {
        "elapsed_s": round(result["elapsed_s"], 4),
        "filter_seconds": round(result["filter_seconds"], 4),
        "search_seconds": round(result["search_seconds"], 4),
        "lps_solved": result["evaluations"],
        "cache_hits": result["cache_hits"],
        "cache_hit_rate": round(result["cache_hit_rate"], 4),
        "refine_rounds": result["refine_rounds"],
        "filter_priced": result["filter_priced"],
        "filter_screen_rate": round(result["filter_screen_rate"], 4),
        "cost_musd": round(result["cost_musd"], 4),
        "feasible": result["feasible"],
    }


def bench_catalogue_scale() -> dict:
    """The 5k/20k synthetic-grid points beyond the paper's 1373 candidates.

    One round each: the wall-clock is dominated by the vectorized screen and
    the near-constant number of exactly-priced survivors, both stable.
    Profile building (weather synthesis) happens outside the timed region.
    """
    results = {}
    for count in SYNTHETIC_COUNTS:
        result = run_heuristic(count, synthetic_grid=True)
        results[str(count)] = _sec3d_record(result)
        print(
            f"catalogue {count:>6} candidates: {result['elapsed_s']:.3f}s "
            f"(filter {result['filter_seconds']:.3f}s / search {result['search_seconds']:.3f}s), "
            f"filter priced {result['filter_priced']:.0f} "
            f"({100 * result['filter_screen_rate']:.1f} % survival)"
        )
    return results


#: Scale points of the executor comparison (the two largest sec3d curves).
EXECUTOR_COMPARISON_COUNTS = (600, 1373)

#: The executor kinds the comparison measures, serial first (the reference
#: every other kind must reproduce bit for bit).
EXECUTOR_KINDS = ("serial", "thread", "process")


def bench_executor_comparison(workers: int = 4) -> dict:
    """Thread vs process vs serial wall-clock at fixed results.

    Two families of fan-out are measured: the heuristic's filter-pricing
    chunks (the sec3d points — the filter dominates at 600/1373 candidates)
    and the experiment runner's sweep points (an hourly-grid Fig. 6 pricing
    sweep).  Every executor must reproduce the serial costs bit for bit —
    the harness asserts it — so the comparison is purely about wall-clock.
    On a single-CPU container the process rows mostly show the fork/pickle
    overhead; run on a multi-core box for the scaling numbers.
    """
    results = {"workers": workers, "cpus_available": available_cpu_count()}
    for count in EXECUTOR_COMPARISON_COUNTS:
        point = {}
        costs = {}
        for executor in EXECUTOR_KINDS:
            run = run_heuristic(count, executor=executor, workers=workers)
            point[executor] = {
                "elapsed_s": round(run["elapsed_s"], 4),
                "filter_seconds": round(run["filter_seconds"], 4),
            }
            costs[executor] = run["cost_musd"]
            print(
                f"sec3d {count:>4} candidates [{executor:>7}]: "
                f"{run['elapsed_s']:.3f}s (filter {run['filter_seconds']:.3f}s), "
                f"cost ${run['cost_musd']:.4f}M"
            )
        if len(set(costs.values())) != 1:
            raise AssertionError(f"executor kinds disagree at {count} candidates: {costs}")
        point["cost_musd"] = round(costs["serial"], 4)
        results[f"sec3d_{count}"] = point

    # An hourly-grid Fig. 6 pricing point through the experiment runner: the
    # three configurations (brown / 50 % solar / 50 % wind) fan out as sweep
    # points.  60 locations keeps the harness snappy; the hourly grid (96
    # epochs) makes each point CPU-bound enough for fan-out to matter.
    fig06 = get_scenario("fig06").build()
    sweep = ParameterSweep(
        base=fig06.base.with_updates(hours_per_epoch=1, num_locations=60),
        axes=fig06.axes,
        mode=fig06.mode,
        name="fig06-hourly-60loc",
    )
    point = {}
    medians = {}
    for executor in EXECUTOR_KINDS:
        runner = ExperimentRunner(workers=workers, executor=executor)
        started = time.perf_counter()
        result_set = runner.run(sweep)
        elapsed = time.perf_counter() - started
        point[executor] = {"elapsed_s": round(elapsed, 4)}
        medians[executor] = tuple(result_set.values("median_monthly_cost"))
        print(f"fig06 hourly 60 locations [{executor:>7}]: {elapsed:.3f}s")
    if len(set(medians.values())) != 1:
        raise AssertionError(f"executor kinds disagree on fig06: {medians}")
    point["median_monthly_cost"] = [round(v, 2) for v in medians["serial"]]
    results["fig06_hourly_60loc"] = point
    return results


def bench_operator(steps: int = 168, rounds: int = 2) -> dict:
    """Rolling-horizon operator throughput on the operate-fig06 scenario.

    The plan stage runs once through the experiment runner; the replay is
    then re-timed standalone (both policies over the same trace), reporting
    steps/second, LPs solved and the warm-start hit rate of the incremental
    dispatch path.
    """
    from repro.operator import OperateConfig, operate_plan

    sweep = get_scenario("operate-fig06").build()
    base = sweep.base.with_updates(**{"operate.steps": steps})
    runner = ExperimentRunner()
    point = runner.run_point(base)
    plan = point.solution.plan
    config = OperateConfig(**base.operate_knobs())
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        record = operate_plan(plan, config, total_capacity_kw=base.total_capacity_kw)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, record)
    elapsed, record = best
    replay_steps = 2 * steps  # forecast + oracle policies over the same trace
    result = {
        "steps": steps,
        "num_sites": record["num_sites"],
        "horizon_steps": record["horizon_steps"],
        "replay_seconds": round(elapsed, 4),
        "steps_per_second": round(replay_steps / elapsed, 1),
        "lps_solved": record["forecast"]["lp_solves"] + record["oracle"]["lp_solves"],
        "cold_loads": record["forecast"]["cold_loads"] + record["oracle"]["cold_loads"],
        "warm_start_rate": round(record["warm_start_rate"], 4),
        "simplex_iterations": record["forecast"]["simplex_iterations"]
        + record["oracle"]["simplex_iterations"],
        "regret_cost_pct": round(record["regret_cost_pct"], 3),
        "forecast_cost_usd": round(record["forecast_cost_usd"], 2),
        "oracle_cost_usd": round(record["oracle_cost_usd"], 2),
    }
    print(
        f"operator {steps} steps x {record['num_sites']} sites: {elapsed:.3f}s "
        f"({result['steps_per_second']:.0f} steps/s, {result['lps_solved']} LPs, "
        f"{result['cold_loads']} cold loads, "
        f"{100 * result['warm_start_rate']:.0f} % warm-started, "
        f"regret {result['regret_cost_pct']:+.2f} %)"
    )
    return result


def bench_stochastic_ensemble(draws: int = 8, rounds: int = 2) -> dict:
    """Joint stochastic-LP throughput and the full ensemble-report wall-clock.

    Plans the robust-saa base deterministically once, then times (a) the
    joint scenario LP (shared sizing, per-draw epoch blocks) across the
    weather/demand ensemble and (b) the complete regret report (per-draw
    fixed + clairvoyant solves).  Draws/second is the number the robustness
    sweeps are bounded by.
    """
    from repro.core.provisioning import ProvisioningCompiler
    from repro.robust import EnsembleConfig, ensemble_report, perturbed_problem, solve_ensemble_lp
    from repro.robust.stochastic import plan_siting_and_sizing
    from repro.scenarios import get_scenario

    base = get_scenario("robust-saa").build().base.with_updates(ensemble={})
    runner = ExperimentRunner()
    point = runner.run_point(base)
    plan = point.solution.plan
    problem, _ = runner._problem_for(base, runner.tool_for(base))
    siting, sizing = plan_siting_and_sizing(plan)
    config = EnsembleConfig(draws=draws, mode="stochastic")

    best_solve = None
    for _ in range(rounds):
        started = time.perf_counter()
        compilers = [
            ProvisioningCompiler(perturbed_problem(problem, config, draw))
            for draw in range(draws)
        ]
        joint = solve_ensemble_lp(compilers, siting, options=runner.solver_options)
        elapsed = time.perf_counter() - started
        if best_solve is None or elapsed < best_solve[0]:
            best_solve = (elapsed, joint)
    solve_seconds, joint = best_solve

    started = time.perf_counter()
    report = ensemble_report(problem, siting, sizing, config, options=runner.solver_options)
    report_seconds = time.perf_counter() - started

    result = {
        "draws": draws,
        "num_sites": len(siting),
        "num_cols": joint.num_cols,
        "num_rows": joint.num_rows,
        "simplex_iterations": joint.iterations,
        "joint_lp_seconds": round(solve_seconds, 4),
        "draws_per_second": round(draws / solve_seconds, 1),
        "report_seconds": round(report_seconds, 4),
        "expected_cost_musd": round(report["expected_cost"] / 1e6, 4),
        "cvar_cost_musd": round(report["cvar_cost"] / 1e6, 4),
        "regret_mean_pct": round(report["regret_mean_pct"], 3),
        "stochastic_saving_pct": round(report["stochastic_saving_pct"], 3),
    }
    print(
        f"stochastic ensemble {draws} draws x {result['num_sites']} sites: "
        f"joint LP {result['num_cols']}x{result['num_rows']} in {solve_seconds:.3f}s "
        f"({result['draws_per_second']:.1f} draws/s), report {report_seconds:.3f}s, "
        f"regret {result['regret_mean_pct']:+.2f} %, "
        f"stochastic saving {result['stochastic_saving_pct']:+.2f} %"
    )
    return result


def bench_contingency(rounds: int = 2, fallback_steps: int = 2000) -> dict:
    """N-1 contingency planning and failover-dispatch throughput.

    Plans the contingency-fig06 base deterministically once, then times
    (a) the joint N-1 LP — shared sizing with one replicated epoch block per
    single-site outage plus the epsilon budget rows — (b) the batched
    block-diagonal evaluation of a fixed sizing across every contingency,
    and (c) the greedy fallback dispatcher's pure-numpy step rate (the floor
    the operator degrades to when the solver is down entirely).
    """
    import numpy as np

    from repro.core.provisioning import ProvisioningCompiler
    from repro.operator import GreedyFallbackDispatcher, SiteAsset
    from repro.robust import ContingencyConfig, evaluate_contingencies, solve_contingency_lp
    from repro.robust.stochastic import plan_siting_and_sizing

    base = get_scenario("contingency-fig06").build().base.with_updates(contingency={})
    runner = ExperimentRunner()
    point = runner.run_point(base)
    plan = point.solution.plan
    problem, _ = runner._problem_for(base, runner.tool_for(base))
    siting, det_sizing = plan_siting_and_sizing(plan)
    compiler = ProvisioningCompiler(problem)
    config = ContingencyConfig(survivability_epsilon=0.05)

    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        joint = solve_contingency_lp(
            compiler, siting, config=config, options=runner.solver_options
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, joint)
    joint_seconds, joint = best

    started = time.perf_counter()
    evaluate_contingencies(
        compiler, siting, det_sizing, options=runner.solver_options, batched=True
    )
    eval_seconds = time.perf_counter() - started

    # Greedy fallback step rate: a 3-site fleet, no solver involved.
    steps = fallback_steps
    hours = np.arange(steps, dtype=float)
    sites = [
        SiteAsset(
            name=f"site-{index}",
            capacity_kw=600.0,
            battery_kwh=180.0,
            energy_price_per_kwh=0.1,
            pue=np.full(steps, 1.25),
            production_kw=np.clip(np.sin(2 * np.pi * (hours + 8.0 * index) / 24.0), 0, None)
            * 1080.0,
        )
        for index in range(3)
    ]
    dispatcher = GreedyFallbackDispatcher(sites)
    load = np.zeros(3)
    level = np.zeros(3)
    started = time.perf_counter()
    for step in range(steps):
        decision = dispatcher.decide(
            step,
            load,
            level,
            demand_kw=900.0 + 300.0 * np.sin(2 * np.pi * step / 24.0),
            production_kw=np.array([float(site.production_kw[step]) for site in sites]),
            wan_budget_kw=250.0,
        )
        load = decision.compute_kw
        level = decision.level_kwh
    fallback_seconds = time.perf_counter() - started

    result = {
        "num_sites": len(siting),
        "epsilon": config.survivability_epsilon,
        "num_cols": joint.num_cols,
        "num_rows": joint.num_rows,
        "simplex_iterations": joint.iterations,
        "joint_lp_seconds": round(joint_seconds, 4),
        "contingencies_per_second": round(len(siting) / joint_seconds, 1),
        "batched_eval_seconds": round(eval_seconds, 4),
        "worst_unserved_kwh": round(float(joint.worst_unserved_kwh), 1),
        "budget_unserved_kwh": round(float(joint.budget_unserved_kwh), 1),
        "greedy_fallback_steps_per_second": round(steps / fallback_seconds, 1),
    }
    print(
        f"contingency {len(siting)} sites: joint N-1 LP "
        f"{joint.num_cols}x{joint.num_rows} in {joint_seconds:.3f}s "
        f"({result['contingencies_per_second']:.1f} contingencies/s), "
        f"batched eval {eval_seconds:.3f}s, greedy fallback "
        f"{result['greedy_fallback_steps_per_second']:.0f} steps/s"
    )
    return result


def bench_serve(requests: int = 240) -> dict:
    """Sustained ``repro serve`` throughput over a mixed scenario replay.

    Delegates to :mod:`serve_load` (imported lazily: it imports this module
    for the trajectory helpers): a burst of ``requests`` over 12 distinct
    downsized registered scenarios from 8 keep-alive HTTP clients, with the
    server-vs-direct bit-identity check on every distinct spec.
    """
    from serve_load import run_load

    result = run_load(total_requests=requests)
    if result["differential_mismatches"]:
        raise AssertionError(
            f"serve differential mismatches: {result['differential_mismatches']}"
        )
    latency = result["client_latency"]
    print(
        f"serve {result['requests']} requests ({result['distinct_specs']} specs, "
        f"{result['clients']} clients): {result['plans_per_second']:.1f} plans/s, "
        f"p50 {1000 * latency['p50_s']:.1f} ms, p99 {1000 * latency['p99_s']:.1f} ms, "
        f"{100 * result['dedup_rate']:.0f} % dedup"
    )
    return result


def bench_sec5c(rounds: int = 3) -> dict:
    results = {}
    for scale in SCALES_MW:
        solar_share, wind_share = SETUPS["solar+wind"]
        scheduler = build_scheduler(scale, solar_share, wind_share)
        scheduler.schedule(12.0)  # warm-up
        times = []
        for _ in range(rounds):
            times.append(scheduler.schedule(12.0).solve_time_seconds)
        best_ms = 1000.0 * min(times)
        results[f"{scale:.0f}MW"] = round(best_ms, 3)
        print(f"sec5c solar+wind {scale:.0f} MW: {best_ms:.1f} ms per scheduling pass")
    return results


def git_revision() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"], cwd=BENCH_DIR, text=True
            ).strip()
        )
    except Exception:
        return "unknown"


def load_trajectory(path: Path) -> dict:
    """Existing trajectory, upgrading the pre-append single-record format."""
    if not path.exists():
        return {"baseline_seed": BASELINE_SEED, "entries": []}
    try:
        payload = json.loads(path.read_text())
    except ValueError:
        return {"baseline_seed": BASELINE_SEED, "entries": []}
    if "entries" in payload:
        payload.setdefault("baseline_seed", BASELINE_SEED)
        return payload
    # Legacy layout: one flat record with the baseline inline — keep the old
    # measurement as the trajectory's first entry.
    entry = {key: value for key, value in payload.items() if key != "baseline_seed"}
    return {"baseline_seed": payload.get("baseline_seed", BASELINE_SEED), "entries": [entry]}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_DIR / "BENCH_solver.json",
        help="where to append the benchmark record (default: benchmarks/BENCH_solver.json)",
    )
    args = parser.parse_args()

    started = time.perf_counter()
    entry = {
        "revision": git_revision(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "rounds": "best of 2 per scale point",
        "sec3d_heuristic_scaling": bench_sec3d(),
        "catalogue_scale": bench_catalogue_scale(),
        "sec5c_scheduler_timing_ms": bench_sec5c(),
        "parallel_executor_comparison": bench_executor_comparison(),
        "operator_rolling_horizon": bench_operator(),
        "stochastic_ensemble": bench_stochastic_ensemble(),
        "contingency_planning": bench_contingency(),
        "serve_throughput": bench_serve(),
    }
    entry["harness_seconds"] = round(time.perf_counter() - started, 2)

    # The seed baseline only covers the original 12/30/60 points, so the
    # speedup is pinned to the 60-candidate scale even though entries now
    # also carry the extended 240/600/1373 curve.
    largest = str(max(CANDIDATE_COUNTS))
    seed = BASELINE_SEED["sec3d_heuristic_scaling"][largest]["elapsed_s"]
    now = entry["sec3d_heuristic_scaling"][largest]["elapsed_s"]
    entry[f"speedup_vs_seed_at_{largest}_candidates"] = round(seed / now, 2)

    trajectory = load_trajectory(args.output)
    trajectory["entries"].append(entry)
    serialized = json.dumps(trajectory, indent=2) + "\n"
    args.output.write_text(serialized)
    # Tooling discovers perf trajectories as BENCH_*.json at the repo root, so
    # mirror the canonical benchmarks/ copy there on every append.
    if args.output.resolve() == (BENCH_DIR / "BENCH_solver.json").resolve():
        (BENCH_DIR.parent / "BENCH_solver.json").write_text(serialized)

    print(f"\nappended entry {len(trajectory['entries'])} ({entry['revision']}) to {args.output}")
    print("trajectory at the largest scale "
          f"({largest} candidates, seed {seed:.3f}s):")
    for past in trajectory["entries"]:
        point = past.get("sec3d_heuristic_scaling", {}).get(largest)
        if point:
            speedup = past.get(
                f"speedup_vs_seed_at_{largest}_candidates",
                past.get("speedup_vs_seed_at_largest_scale", "?"),  # legacy key
            )
            print(f"  {past.get('revision', '?'):>10}  {past.get('date', ''):<22}"
                  f"{point['elapsed_s']:.3f}s  ({speedup}x)")


if __name__ == "__main__":
    main()
