"""Perf-trajectory harness: run the solver benchmarks, write BENCH_solver.json.

Runs the Section III-D heuristic-solver scaling benchmark and the Section V-C
scheduler-timing benchmark without pytest and records wall-clock per stage,
LP counts and cache hit rates to ``BENCH_solver.json`` next to this file, so
future PRs have a machine-readable perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH]

The committed ``BENCH_solver.json`` additionally carries the measured numbers
of the seed implementation (``baseline_seed``) for the before/after record of
the fast-siting-search PR.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

from bench_sec3d_solver_scaling import CANDIDATE_COUNTS, run_heuristic  # noqa: E402
from bench_sec5c_scheduler_timing import SCALES_MW, SETUPS, build_scheduler  # noqa: E402

#: Seed-implementation numbers (commit b4313fa), measured on the same
#: 1-CPU container this harness first ran on: sequential chains, dict-based
#: LinearExpression model assembly, dense linprog backend.
BASELINE_SEED = {
    "sec3d_heuristic_scaling": {
        "12": {"elapsed_s": 0.396, "evaluations": 9},
        "30": {"elapsed_s": 0.592, "evaluations": 8},
        "60": {"elapsed_s": 0.856, "evaluations": 9},
    },
    "sec5c_scheduler_timing_ms": {"50MW": 11.0, "200MW": 11.0},
}


def bench_sec3d(rounds: int = 2) -> dict:
    """Best-of-``rounds`` per scale point, to damp container CPU jitter."""
    results = {}
    for count in CANDIDATE_COUNTS:
        result = min(
            (run_heuristic(count) for _ in range(rounds)),
            key=lambda r: r["elapsed_s"],
        )
        results[str(count)] = {
            "elapsed_s": round(result["elapsed_s"], 4),
            "filter_seconds": round(result["filter_seconds"], 4),
            "search_seconds": round(result["search_seconds"], 4),
            "lps_solved": result["evaluations"],
            "cache_hits": result["cache_hits"],
            "cache_hit_rate": round(result["cache_hit_rate"], 4),
            "cost_musd": round(result["cost_musd"], 4),
            "feasible": result["feasible"],
        }
        print(
            f"sec3d {count:>3} candidates: {result['elapsed_s']:.3f}s "
            f"(filter {result['filter_seconds']:.3f}s / search {result['search_seconds']:.3f}s), "
            f"{result['evaluations']} LPs, {result['cache_hits']} cache hits"
        )
    return results


def bench_sec5c(rounds: int = 3) -> dict:
    results = {}
    for scale in SCALES_MW:
        solar_share, wind_share = SETUPS["solar+wind"]
        scheduler = build_scheduler(scale, solar_share, wind_share)
        scheduler.schedule(12.0)  # warm-up
        times = []
        for _ in range(rounds):
            times.append(scheduler.schedule(12.0).solve_time_seconds)
        best_ms = 1000.0 * min(times)
        results[f"{scale:.0f}MW"] = round(best_ms, 3)
        print(f"sec5c solar+wind {scale:.0f} MW: {best_ms:.1f} ms per scheduling pass")
    return results


def git_revision() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"], cwd=BENCH_DIR, text=True
            ).strip()
        )
    except Exception:
        return "unknown"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_DIR / "BENCH_solver.json",
        help="where to write the benchmark record (default: benchmarks/BENCH_solver.json)",
    )
    args = parser.parse_args()

    started = time.perf_counter()
    payload = {
        "revision": git_revision(),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "rounds": "best of 2 per scale point",
        "baseline_seed": BASELINE_SEED,
        "sec3d_heuristic_scaling": bench_sec3d(),
        "sec5c_scheduler_timing_ms": bench_sec5c(),
    }
    payload["harness_seconds"] = round(time.perf_counter() - started, 2)

    largest = str(max(CANDIDATE_COUNTS))
    seed = BASELINE_SEED["sec3d_heuristic_scaling"][largest]["elapsed_s"]
    now = payload["sec3d_heuristic_scaling"][largest]["elapsed_s"]
    payload["speedup_vs_seed_at_largest_scale"] = round(seed / now, 2)

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output} (speedup vs seed at {largest} candidates: "
          f"{payload['speedup_vs_seed_at_largest_scale']:.1f}x)")


if __name__ == "__main__":
    main()
