"""Replay-driven load benchmark for the ``repro serve`` daemon.

Boots a :class:`PlanServer` behind the stdlib HTTP front-end on a loopback
port, then fires hundreds of planning requests — a round-robin replay over a
mixed catalogue of *downsized registered scenarios* — from concurrent
keep-alive clients.  Reported numbers:

- sustained throughput (plans/second over the whole burst),
- client-side latency percentiles (p50/p95/p99/max),
- the server's dedup rate (identical in-flight requests collapsing onto one
  solve) and distinct solves started,
- the workers' warm-vs-cold cache rates (compiled skeletons, problems,
  catalogues, on-disk artifacts) reported back through ``/metrics``.

Every distinct spec is also differentially checked: the record served over
HTTP must be bit-identical (canonical JSON) to what a fresh
:class:`ExperimentRunner` computes directly — the daemon is a cache in front
of ``repro sweep``, never a different answer.  A mismatch exits nonzero.

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py [--requests 240]
        [--distinct 12] [--clients 8] [--executor thread] [--append]

``--append`` records the result as one entry in ``BENCH_solver.json`` (and
the repo-root mirror), alongside the solver-benchmark trajectory.
"""

from __future__ import annotations

import argparse
import datetime
import http.client
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from run_benchmarks import git_revision, load_trajectory  # noqa: E402

from repro.scenarios import ExperimentRunner, ScenarioSpec, get_scenario  # noqa: E402
from repro.serve import HttpFrontend, PlanServer, ServeConfig  # noqa: E402
from repro.serve.metrics import percentile  # noqa: E402

#: Registered scenarios the replay draws points from (planning sweeps only:
#: operate/robust scenarios run extra phases that belong to their own
#: benchmarks, not the serving path).
REPLAY_SCENARIOS = (
    "smoke",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
)

#: The downsizing applied to every replayed spec so one solve is ~0.1 s:
#: a 12-location catalogue on a coarse epoch grid with a short search.
TINY_OVERRIDES = dict(
    num_locations=12,
    catalog_seed=3,
    days_per_season=1,
    hours_per_epoch=6,
    total_capacity_kw=20_000.0,
    search={
        "keep_locations": 4,
        "max_iterations": 3,
        "patience": 3,
        "num_chains": 1,
        "seed": 3,
        "max_datacenters": 3,
    },
)


def build_catalogue(distinct: int) -> List[ScenarioSpec]:
    """The first ``distinct`` unique downsized specs across the replay mix."""
    specs: List[ScenarioSpec] = []
    seen = set()
    for name in REPLAY_SCENARIOS:
        for point in get_scenario(name).build().points():
            spec = point.spec.with_updates(**TINY_OVERRIDES)
            key = spec.content_hash()
            if key in seen:
                continue
            seen.add(key)
            specs.append(spec)
            if len(specs) >= distinct:
                return specs
    return specs


class ServerThread:
    """The daemon's event loop on a background thread, bound to port 0."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.port: Optional[int] = None
        self.server: Optional[PlanServer] = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, name="serve-load", daemon=True)

    def _run(self) -> None:
        import asyncio

        async def main() -> None:
            self.server = PlanServer(self.config)
            frontend = HttpFrontend(self.server, port=0)
            await frontend.start()
            self.port = frontend.port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await frontend.stop(grace_s=30.0)

        asyncio.run(main())

    def start(self) -> None:
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("server thread did not come up")

    def metrics(self) -> Dict[str, Any]:
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30.0)
        try:
            connection.request("GET", "/metrics")
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120.0)


def client_worker(
    port: int,
    payloads: List[bytes],
    start_offset: int,
    count: int,
    latencies: List[float],
    records: Dict[str, str],
    failures: List[str],
) -> None:
    """One keep-alive client replaying ``count`` requests round-robin."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300.0)
    try:
        for step in range(count):
            body = payloads[(start_offset + step) % len(payloads)]
            started = time.perf_counter()
            connection.request(
                "POST", "/plan", body, {"Content-Type": "application/json"}
            )
            raw = connection.getresponse().read()
            latencies.append(time.perf_counter() - started)
            response = json.loads(raw)
            if response.get("status") != "ok":
                failures.append(f"{response.get('error')}: {response.get('message')}")
                continue
            records.setdefault(
                response["content_hash"],
                json.dumps(response["record"], sort_keys=True),
            )
    except Exception as error:  # noqa: BLE001 - report, don't hang the pool
        failures.append(f"{type(error).__name__}: {error}")
    finally:
        connection.close()


def run_load(
    total_requests: int = 240,
    distinct: int = 12,
    clients: int = 8,
    executor: str = "thread",
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    check_differential: bool = True,
) -> Dict[str, Any]:
    specs = build_catalogue(distinct)
    payloads = [
        json.dumps({"id": index, "spec": spec.to_dict()}).encode("utf-8")
        for index, spec in enumerate(specs)
    ]
    config = ServeConfig(
        executor=executor,
        workers=workers,
        queue_limit=max(64, distinct * 2),
        timeout_s=300.0,
        cache_dir=cache_dir,
    )
    daemon = ServerThread(config)
    daemon.start()

    per_client = total_requests // clients
    extra = total_requests - per_client * clients
    latencies: List[float] = []
    records: Dict[str, str] = {}
    failures: List[str] = []
    threads = []
    started = time.perf_counter()
    for index in range(clients):
        count = per_client + (1 if index < extra else 0)
        # Clients start at staggered offsets so identical specs overlap
        # in flight — the dedup path under load, not just in unit tests.
        thread = threading.Thread(
            target=client_worker,
            args=(daemon.port, payloads, index, count, latencies, records, failures),
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    metrics = daemon.metrics()
    daemon.stop()

    if failures:
        raise RuntimeError(f"{len(failures)} requests failed; first: {failures[0]}")

    mismatches = []
    if check_differential:
        for spec in specs:
            direct = ExperimentRunner(
                cache_dir=None, workers=1, executor="serial"
            ).run_point(spec)
            expected = json.dumps(direct.record, sort_keys=True)
            served = records.get(spec.content_hash())
            if served != expected:
                mismatches.append(spec.content_hash())

    window = sorted(latencies)
    caches = metrics["worker_caches"]
    result = {
        "requests": total_requests,
        "distinct_specs": len(specs),
        "clients": clients,
        "executor": executor,
        "workers": metrics["workers"],
        "elapsed_s": round(elapsed, 3),
        "plans_per_second": round(total_requests / elapsed, 1),
        "client_latency": {
            "p50_s": round(percentile(window, 0.50), 4),
            "p95_s": round(percentile(window, 0.95), 4),
            "p99_s": round(percentile(window, 0.99), 4),
            "max_s": round(window[-1], 4) if window else None,
        },
        "solves_started": metrics["solves_started"],
        "dedup_hits": metrics["dedup_hits"],
        "dedup_rate": round(metrics["dedup_hits"] / total_requests, 4),
        "worker_caches": {
            "workers_reporting": caches["workers_reporting"],
            "skeleton_warm_rate": _round_rate(caches["skeleton_warm_rate"]),
            "problem_warm_rate": _round_rate(caches["problem_warm_rate"]),
            "catalog_warm_rate": _round_rate(caches["catalog_warm_rate"]),
            "artifact_hit_rate": _round_rate(caches["artifact_hit_rate"]),
        },
        "differential_checked": len(specs) if check_differential else 0,
        "differential_mismatches": mismatches,
    }
    return result


def _round_rate(value: Any) -> Any:
    if isinstance(value, float) and value == value:
        return round(value, 4)
    return None  # NaN: that cache saw no traffic


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--distinct", type=int, default=12)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--executor", default="thread", choices=("serial", "thread", "process")
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the server-vs-direct bit-identity check (quick smoke runs)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append the result to benchmarks/BENCH_solver.json (and the root mirror)",
    )
    args = parser.parse_args()

    result = run_load(
        total_requests=args.requests,
        distinct=args.distinct,
        clients=args.clients,
        executor=args.executor,
        workers=args.workers,
        cache_dir=args.cache_dir,
        check_differential=not args.no_differential,
    )

    latency = result["client_latency"]
    print(
        f"serve_load [{result['executor']}]: {result['requests']} requests "
        f"({result['distinct_specs']} distinct specs, {result['clients']} clients) "
        f"in {result['elapsed_s']:.2f}s = {result['plans_per_second']:.1f} plans/s"
    )
    print(
        f"  latency p50 {latency['p50_s'] * 1000:.1f} ms / "
        f"p99 {latency['p99_s'] * 1000:.1f} ms / max {latency['max_s'] * 1000:.1f} ms"
    )
    print(
        f"  {result['solves_started']} solves, {result['dedup_hits']} dedup hits "
        f"({100 * result['dedup_rate']:.1f} % of requests), worker caches: "
        f"skeleton warm {result['worker_caches']['skeleton_warm_rate']}, "
        f"problem warm {result['worker_caches']['problem_warm_rate']}"
    )
    if result["differential_mismatches"]:
        print(
            f"DIFFERENTIAL FAILURE: {len(result['differential_mismatches'])} specs "
            f"served records differing from direct runs: "
            f"{result['differential_mismatches']}"
        )
        return 1
    if result["differential_checked"]:
        print(
            f"  differential: {result['differential_checked']} distinct specs "
            "bit-identical to direct ExperimentRunner records"
        )

    if args.append:
        output = BENCH_DIR / "BENCH_solver.json"
        trajectory = load_trajectory(output)
        entry = {
            "revision": git_revision(),
            "date": datetime.datetime.now(datetime.timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"
            ),
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "cpus": os.cpu_count(),
            },
            "serve_throughput": result,
        }
        trajectory["entries"].append(entry)
        serialized = json.dumps(trajectory, indent=2) + "\n"
        output.write_text(serialized)
        (BENCH_DIR.parent / "BENCH_solver.json").write_text(serialized)
        print(f"appended serve_throughput entry {len(trajectory['entries'])} to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
