"""Perf smoke check: the Section III-D points must stay cheap.

Wall-clock on shared CI runners is too noisy to gate on, so this pins
deterministic *counts*:

* the 60-location point's provisioning-LP evaluations (filter pricing is
  excluded; the counter is the siting-evaluation memo's miss count) — a
  regression means the siting memo, the adaptive epoch-grid scheme or the
  search schedule silently got worse;
* the 1373-location point's exactly-priced filter candidates — a regression
  means the vectorized screen stopped pruning (every candidate would fall
  back to an exact LP solve, the pre-two-stage behaviour).  A generous
  wall-clock ceiling on the filter stage backs the count gate: it only
  trips on order-of-magnitude regressions, not runner jitter.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sec3d_solver_scaling import run_heuristic  # noqa: E402

#: Ceiling on sec3d 60-location LP evaluations (currently 11: 9 siting
#: evaluations on the coarse grid plus 2 adaptive refinement rounds).
LPS_SOLVED_CEILING = 16

#: The full-catalogue filter point the screen gate runs at.
FILTER_CANDIDATES = 1373

#: Ceiling on the fraction of the catalogue the filter may price exactly
#: (currently ~11 %: the screen's admissible bound prunes the rest).
FILTER_PRICED_FRACTION_CEILING = 0.25

#: Generous ceiling on the filter stage's wall-clock at 1373 candidates
#: (currently ~0.15 s threaded / ~0.35 s serial; the ceiling only catches
#: order-of-magnitude regressions such as losing the screen entirely).
FILTER_SECONDS_CEILING = 2.0


def main() -> int:
    result = run_heuristic(60)
    lps = result["evaluations"]
    print(
        f"sec3d 60 candidates: {lps} LPs solved (ceiling {LPS_SOLVED_CEILING}), "
        f"{result['elapsed_s']:.3f}s, cost ${result['cost_musd']:.2f}M/month, "
        f"feasible={result['feasible']}"
    )
    if not result["feasible"]:
        print("FAIL: the 60-location benchmark instance became infeasible")
        return 1
    if lps > LPS_SOLVED_CEILING:
        print(
            f"FAIL: lps_solved {lps} exceeds the pinned ceiling {LPS_SOLVED_CEILING} — "
            "the search is solving more LPs than the recorded trajectory"
        )
        return 1

    full = run_heuristic(FILTER_CANDIDATES)
    priced = full["filter_priced"]
    priced_ceiling = FILTER_PRICED_FRACTION_CEILING * FILTER_CANDIDATES
    print(
        f"sec3d {FILTER_CANDIDATES} candidates: filter priced {priced:.0f} exactly "
        f"(ceiling {priced_ceiling:.0f}), filter {full['filter_seconds']:.3f}s "
        f"(ceiling {FILTER_SECONDS_CEILING:.1f}s), "
        f"survival {100 * full['filter_screen_rate']:.1f} %"
    )
    if not full["feasible"]:
        print(f"FAIL: the {FILTER_CANDIDATES}-location benchmark instance became infeasible")
        return 1
    if priced > priced_ceiling:
        print(
            f"FAIL: the filter priced {priced:.0f} candidates exactly, above the "
            f"{priced_ceiling:.0f} ceiling — the admissible screen stopped pruning"
        )
        return 1
    if full["filter_seconds"] > FILTER_SECONDS_CEILING:
        print(
            f"FAIL: the filter stage took {full['filter_seconds']:.3f}s, above the "
            f"{FILTER_SECONDS_CEILING:.1f}s ceiling"
        )
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
