"""Perf smoke check: the 60-location Section III-D point must stay cheap.

Wall-clock on shared CI runners is too noisy to gate on, so this pins the
*count* of provisioning LPs the heuristic solves end-to-end (filter pricing
is excluded; the counter is the siting-evaluation memo's miss count), which
is deterministic for a fixed seed.  A regression here means the siting memo,
the adaptive epoch-grid scheme or the search schedule silently got worse.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sec3d_solver_scaling import run_heuristic  # noqa: E402

#: Ceiling on sec3d 60-location LP evaluations (currently 11: 9 siting
#: evaluations on the coarse grid plus 2 adaptive refinement rounds).
LPS_SOLVED_CEILING = 16


def main() -> int:
    result = run_heuristic(60)
    lps = result["evaluations"]
    print(
        f"sec3d 60 candidates: {lps} LPs solved (ceiling {LPS_SOLVED_CEILING}), "
        f"{result['elapsed_s']:.3f}s, cost ${result['cost_musd']:.2f}M/month, "
        f"feasible={result['feasible']}"
    )
    if not result["feasible"]:
        print("FAIL: the 60-location benchmark instance became infeasible")
        return 1
    if lps > LPS_SOLVED_CEILING:
        print(
            f"FAIL: lps_solved {lps} exceeds the pinned ceiling {LPS_SOLVED_CEILING} — "
            "the search is solving more LPs than the recorded trajectory"
        )
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
