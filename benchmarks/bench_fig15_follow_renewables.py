"""Fig. 15 — GreenNebula follow-the-renewables load distribution over one day."""

import numpy as np

from conftest import print_header
from repro.analysis import figure15_follow_the_renewables
from repro.core import StorageMode
from repro.greennebula import EmulationConfig


def test_fig15_follow_the_renewables(benchmark, sweeps):
    no_storage = sweeps.sweep(StorageMode.NONE)
    plan = no_storage["wind_and_or_solar"][1.0].plan
    assert plan is not None

    config = EmulationConfig(num_vms=9, duration_hours=24, seed=2014)
    series = benchmark.pedantic(
        figure15_follow_the_renewables,
        args=(plan,),
        kwargs={"duration_hours": 24, "num_vms": 9, "config": config},
        rounds=1,
        iterations=1,
    )

    print_header("Figure 15: follow-the-renewables load distribution over one emulated day")
    for name, per_dc in series.items():
        load = np.array(per_dc["load_kw"])
        green = np.array(per_dc["green_available_kw"])
        migrations = np.array(per_dc["migration_kw"])
        print(f"{name}:")
        print(f"  hourly VM load (kW): {[round(float(v), 2) for v in load]}")
        print(f"  hours with load: {int(np.sum(load > 1e-6))}/24, "
              f"peak green available: {green.max():.2f} kW, "
              f"migration overhead hours: {int(np.sum(migrations > 1e-6))}")
    print(
        "paper shape: the workload starts in one datacenter and moves across the others "
        "as their green energy rises and falls; migration overhead (red) is small compared "
        "to the load itself"
    )

    loads = {name: np.array(per_dc["load_kw"]) for name, per_dc in series.items()}
    total_per_hour = np.sum(list(loads.values()), axis=0)
    fleet_kw = 9 * 0.03
    # The whole fleet keeps running every hour (batch jobs are never dropped).
    assert np.all(total_per_hour >= fleet_kw - 1e-6)
    # The load is not pinned to a single datacenter for the whole day.
    active_sites = sum(1 for load in loads.values() if load.max() > 1e-6)
    assert active_sites >= 2
    # Migration overhead stays a small fraction of the served load.
    total_migration = sum(np.sum(per_dc["migration_kw"]) for per_dc in series.values())
    assert total_migration <= 0.5 * np.sum(total_per_hour)
