"""Table III — the network chosen for 100 % green energy without storage."""

from conftest import BENCH_CAPACITY_KW, print_header
from repro.analysis import format_table, table3_no_storage_network
from repro.core import StorageMode


def test_table3_no_storage_network(benchmark, sweeps):
    results = benchmark.pedantic(sweeps.sweep, args=(StorageMode.NONE,), rounds=1, iterations=1)
    solution = results["wind_and_or_solar"][1.0]
    assert solution.feasible and solution.plan is not None
    plan = solution.plan

    print_header("Table III: network for 100 % green energy without storage")
    print(format_table(table3_no_storage_network(plan)))
    print(f"total: {plan.total_capacity_kw / 1000:.1f} MW IT, "
          f"{plan.total_solar_kw / 1000:.1f} MW solar, {plan.total_wind_kw / 1000:.1f} MW wind, "
          f"{plan.num_datacenters} datacenters, ${plan.total_monthly_cost / 1e6:.1f}M/month")
    print(
        "paper solution: 3 datacenters (Mexico City, Andersen/Guam, Harare), 150 MW of IT, "
        "~1.1 GW of solar plus some wind — heavy over-provisioning of the green plants"
    )

    # Shape: at least the availability minimum of sites, green plants several times
    # larger than the IT load, and the compute-capacity floor respected.
    assert plan.num_datacenters >= 2
    assert plan.total_capacity_kw >= BENCH_CAPACITY_KW - 1e-3
    assert (plan.total_solar_kw + plan.total_wind_kw) >= 4 * BENCH_CAPACITY_KW
    assert plan.green_fraction >= 1.0 - 1e-3
