"""Fig. 13 — cost of the 100 % green / no-storage network vs migration overhead.

Ported to the declarative scenario runner: the source-mix x migration-factor
grid is the registered ``fig13`` sweep.
"""

from conftest import print_header, run_scenario
from repro.analysis import format_table, series_to_rows
from repro.scenarios import MIGRATION_FACTORS, source_label


def test_fig13_migration_overhead_sweep(benchmark, runner):
    results = benchmark.pedantic(
        run_scenario, args=(runner, "fig13"), rounds=1, iterations=1
    )

    costs: dict = {}
    for point in results:
        label = source_label(point.overrides["sources"])
        costs.setdefault(label, []).append(point.record["monthly_cost"] / 1e6)

    print_header(
        "Figure 13: cost of the 100 % green, no-storage network vs migration overhead "
        "(fraction of an epoch during which migrated load consumes energy twice), $M/month"
    )
    rows = series_to_rows(costs, "migration_pct", [int(100 * f) for f in MIGRATION_FACTORS])
    print(format_table(rows))
    print(
        "paper shape: cheaper migrations reduce the best solution's cost by up to ~12 % "
        "(19 % for wind-only, which migrates the most); costs rise with the overhead"
    )

    for label in ("wind_and_or_solar", "solar"):
        series = costs[label]
        # Costs are (weakly) increasing in the migration overhead.
        assert series[0] <= series[-1] * 1.02
    # The free-migration solution is meaningfully cheaper or equal.
    both = costs["wind_and_or_solar"]
    assert both[0] <= both[-1]
