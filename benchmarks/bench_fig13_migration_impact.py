"""Fig. 13 — cost of the 100 % green / no-storage network vs migration overhead."""

from conftest import BENCH_CAPACITY_KW, bench_settings, print_header
from repro.analysis import figure13_migration_sweep, format_table, series_to_rows
from repro.core import StorageMode

MIGRATION_FACTORS = (0.0, 0.5, 1.0)


def test_fig13_migration_overhead_sweep(benchmark, tool):
    settings = bench_settings()
    results = benchmark.pedantic(
        figure13_migration_sweep,
        args=(tool,),
        kwargs={
            "migration_factors": MIGRATION_FACTORS,
            "total_capacity_kw": BENCH_CAPACITY_KW,
            "green_fraction": 1.0,
            "storage": StorageMode.NONE,
            "settings": settings,
        },
        rounds=1,
        iterations=1,
    )

    costs = {
        label: [per_factor[factor].monthly_cost / 1e6 for factor in MIGRATION_FACTORS]
        for label, per_factor in results.items()
    }
    print_header(
        "Figure 13: cost of the 100 % green, no-storage network vs migration overhead "
        "(fraction of an epoch during which migrated load consumes energy twice), $M/month"
    )
    rows = series_to_rows(costs, "migration_pct", [int(100 * f) for f in MIGRATION_FACTORS])
    print(format_table(rows))
    print(
        "paper shape: cheaper migrations reduce the best solution's cost by up to ~12 % "
        "(19 % for wind-only, which migrates the most); costs rise with the overhead"
    )

    for label in ("wind_and_or_solar", "solar"):
        series = costs[label]
        # Costs are (weakly) increasing in the migration overhead.
        assert series[0] <= series[-1] * 1.02
    # The free-migration solution is meaningfully cheaper or equal.
    both = costs["wind_and_or_solar"]
    assert both[0] <= both[-1]
