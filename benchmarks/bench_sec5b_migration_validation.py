"""Section V-B — live-migration validation: state size and transfer time over the WAN."""

import numpy as np

from conftest import print_header
from repro.greennebula import EmulatedCloud, EmulationConfig, WANLink
from repro.greennebula.emulation import DatacenterSpec
from repro.energy import EpochGrid, ProfileBuilder
from repro.weather import build_world_catalog


def build_three_site_emulation():
    catalog = build_world_catalog(num_locations=20, seed=2014)
    builder = ProfileBuilder(catalog)
    grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=1)
    fleet_kw = 9 * 0.03
    names = ["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"]
    specs = [
        DatacenterSpec(
            name=name,
            profile=builder.build(catalog.get(name), grid),
            it_capacity_kw=fleet_kw * 1.3,
            solar_kw=fleet_kw * 7.0,
            wind_kw=fleet_kw * 0.3,
        )
        for name in names
    ]
    config = EmulationConfig(
        num_vms=9, duration_hours=24, initial_datacenter="Harare, Zimbabwe", seed=7
    )
    cloud = EmulatedCloud(specs, config)
    summary = cloud.run()
    return cloud, summary


def test_sec5b_migration_validation(benchmark):
    cloud, summary = benchmark.pedantic(build_three_site_emulation, rounds=1, iterations=1)

    migrations = cloud.trace.of_kind("migration")
    state_sizes = np.array([record["state_mb"] for record in migrations])
    durations = np.array([record["duration_hours"] for record in migrations])

    print_header("Section V-B: live VM migration over the emulated WAN")
    print(f"migrations during the day: {len(migrations)}")
    print(f"migrated state per VM (MB): min {state_sizes.min():.0f}, "
          f"mean {state_sizes.mean():.0f}, max {state_sizes.max():.0f}")
    print(f"transfer time per VM (hours): mean {durations.mean():.2f}, max {durations.max():.2f}")
    print(f"GDFS WAN traffic: fetch {cloud.gdfs.transfers.fetch_mb:.0f} MB, "
          f"re-replication {cloud.gdfs.transfers.replication_mb:.0f} MB, "
          f"migration {cloud.gdfs.transfers.migration_mb:.0f} MB")
    print(
        "paper measurement: over a Barcelona-Piscataway VPN, GreenNebula migrates VMs whose "
        "memory plus unreplicated disk changes total ~750 MB in under one hour"
    )

    assert len(migrations) >= 1
    # Each migration carries the 512 MB memory image plus at most a few hours of
    # dirty data (110 MB/h), i.e. the ~750 MB budget the paper measured.
    assert np.all(state_sizes >= 512.0)
    assert np.all(state_sizes <= 512.0 + 24 * 110.0)
    # At the paper's measured bandwidth (750 MB/h) the typical migration fits in ~1 hour.
    default_link = WANLink("a", "b")
    assert default_link.transfer_hours(float(np.median(state_sizes))) <= 1.5
    # No VM is lost and the service keeps all 9 VMs running.
    assert sum(dc.num_vms for dc in cloud.datacenters) == 9
    assert summary.total_migrations == len(migrations)
