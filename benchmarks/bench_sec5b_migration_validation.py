"""Section V-B — live-migration validation: state size and transfer time over the WAN.

Ported to the declarative scenario runner: the three-site, nine-VM deployment
is the registered ``sec5b`` emulation scenario; the live
:class:`~repro.greennebula.emulation.EmulatedCloud` rides along on the sweep
point for trace inspection.
"""

import numpy as np

from conftest import print_header, run_scenario
from repro.greennebula import WANLink


def test_sec5b_migration_validation(benchmark, runner):
    results = benchmark.pedantic(
        run_scenario, args=(runner, "sec5b"), rounds=1, iterations=1
    )
    point = results[0]
    cloud = point.solution
    record = point.record

    migrations = cloud.trace.of_kind("migration")
    state_sizes = np.array([entry["state_mb"] for entry in migrations])
    durations = np.array([entry["duration_hours"] for entry in migrations])

    print_header("Section V-B: live VM migration over the emulated WAN")
    print(f"migrations during the day: {len(migrations)}")
    print(f"migrated state per VM (MB): min {state_sizes.min():.0f}, "
          f"mean {state_sizes.mean():.0f}, max {state_sizes.max():.0f}")
    print(f"transfer time per VM (hours): mean {durations.mean():.2f}, max {durations.max():.2f}")
    print(f"GDFS WAN traffic: fetch {cloud.gdfs.transfers.fetch_mb:.0f} MB, "
          f"re-replication {cloud.gdfs.transfers.replication_mb:.0f} MB, "
          f"migration {cloud.gdfs.transfers.migration_mb:.0f} MB")
    print(
        "paper measurement: over a Barcelona-Piscataway VPN, GreenNebula migrates VMs whose "
        "memory plus unreplicated disk changes total ~750 MB in under one hour"
    )

    assert len(migrations) >= 1
    # Each migration carries the 512 MB memory image plus at most a few hours of
    # dirty data (110 MB/h), i.e. the ~750 MB budget the paper measured.
    assert np.all(state_sizes >= 512.0)
    assert np.all(state_sizes <= 512.0 + 24 * 110.0)
    # At the paper's measured bandwidth (750 MB/h) the typical migration fits in ~1 hour.
    default_link = WANLink("a", "b")
    assert default_link.transfer_hours(float(np.median(state_sizes))) <= 1.5
    # No VM is lost and the service keeps all 9 VMs running.
    assert sum(dc.num_vms for dc in cloud.datacenters) == 9
    assert record["total_migrations"] == len(migrations)
