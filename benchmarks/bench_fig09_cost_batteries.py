"""Fig. 9 — per-month cost vs desired green percentage, with battery storage."""

from conftest import print_header
from repro.analysis.figures import GREEN_FRACTIONS, solution_costs
from repro.analysis import format_table, series_to_rows
from repro.core import StorageMode


def test_fig09_cost_vs_green_batteries(benchmark, sweeps):
    results = benchmark.pedantic(
        sweeps.sweep, args=(StorageMode.BATTERIES,), rounds=1, iterations=1
    )
    net_metering = sweeps.sweep(StorageMode.NET_METERING)
    costs = solution_costs(results)
    net_costs = solution_costs(net_metering)

    print_header("Figure 9: cost vs desired green percentage (batteries), $M/month")
    rows = series_to_rows(costs, "green_pct", [int(100 * f) for f in GREEN_FRACTIONS])
    print(format_table(rows))
    print(
        "paper shape: same trends as net metering but more expensive, because battery "
        "capacity is costly; at 100 % green, wind-only approaches solar-only"
    )

    both = costs["wind_and_or_solar"]
    both_net = net_costs["wind_and_or_solar"]
    # Batteries are never cheaper than net metering (free storage) for the same target.
    for index in range(len(GREEN_FRACTIONS)):
        assert both[index] >= both_net[index] * 0.98
    # Costs still rise with the green requirement.
    assert both[-1] >= both[0] * 0.98
    # Solutions exist and build batteries at high green percentages.
    plan_100 = results["wind_and_or_solar"][1.0].plan
    assert plan_100 is not None and plan_100.total_battery_kwh > 0.0
