"""Measure the ROADMAP's per-site-block basis-memory idea.

Two warm-start strategies exist for structural splices on a mutable HiGHS
model:

* **per-shape reuse** (the default): after a swap, restore the last optimal
  basis of any siting with the same *shape* (site count, small count);
* **per-site-block memory**: project the previous basis across the splice
  and transplant the *leaving* block's statuses onto the *entering* block
  (sites are structurally identical, so the statuses line up).

This script measures both on the two swap-heavy workloads in the repository:
the siting annealer's scripted swap mix (``IncrementalSitingEvaluator``
``basis_mode="shape"`` vs ``"site-block"``) and the operator's rolling-
horizon dispatch loop, where every step swaps the expiring window step for a
fresh one (``DispatchConfig.carry_block_status``).  Objectives must agree to
1e-9 between modes — only iterations and wall-clock may differ.

Usage::

    PYTHONPATH=src python benchmarks/bench_basis_memory.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.core.problem import EnergySources, SitingProblem, StorageMode  # noqa: E402
from repro.core.parameters import FrameworkParameters  # noqa: E402
from repro.core.provisioning import (  # noqa: E402
    IncrementalSitingEvaluator,
    ProvisioningCompiler,
)
from repro.energy.profiles import EpochGrid, ProfileBuilder  # noqa: E402
from repro.operator import OperateConfig, ReplayHarness, SiteAsset, TrafficModel  # noqa: E402
from repro.weather.locations import build_world_catalog  # noqa: E402

ROUNDS = 3


def _siting_problem(num_locations: int = 20) -> SitingProblem:
    catalog = build_world_catalog(num_locations=num_locations, seed=11)
    builder = ProfileBuilder(catalog)
    grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)
    profiles = builder.build_all(grid)
    params = FrameworkParameters().with_updates(
        total_capacity_kw=50_000.0, min_green_fraction=0.5
    )
    return SitingProblem(
        profiles=profiles,
        params=params,
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
    )


def _swap_sequence(names, rounds: int = 40):
    """A swap-heavy move mix: rotate one of three sited locations per move."""
    sitings = []
    base = [names[0], names[1], names[2]]
    for k in range(rounds):
        rotated = list(base)
        rotated[k % 3] = names[3 + (k % (len(names) - 3))]
        sitings.append({name: "large" for name in rotated})
    return sitings


def bench_siting_modes() -> dict:
    problem = _siting_problem()
    names = [profile.name for profile in problem.profiles]
    moves = _swap_sequence(names)
    results = {}
    objectives = {}
    for mode in ("shape", "site-block"):
        best = None
        for _ in range(ROUNDS):
            evaluator = IncrementalSitingEvaluator(
                ProvisioningCompiler(problem), basis_mode=mode
            )
            iterations = 0
            costs = []
            started = time.perf_counter()
            for siting in moves:
                result = evaluator.evaluate(siting)
                costs.append(result.monthly_cost)
            elapsed = time.perf_counter() - started
            # simplex iteration count comes from the model's last info; track
            # via the solve results instead: sum what HiGHS reported.
            if best is None or elapsed < best["elapsed_s"]:
                best = {"elapsed_s": elapsed, "moves": len(moves)}
            objectives[mode] = costs
        results[mode] = {
            "elapsed_s": round(best["elapsed_s"], 4),
            "ms_per_move": round(1000.0 * best["elapsed_s"] / best["moves"], 3),
        }
        print(
            f"siting swaps [{mode:>10}]: {best['elapsed_s']:.3f}s "
            f"({results[mode]['ms_per_move']:.2f} ms/move)"
        )
    deltas = np.abs(
        np.asarray(objectives["shape"]) - np.asarray(objectives["site-block"])
    ) / np.maximum(1.0, np.abs(objectives["shape"]))
    if float(deltas.max()) > 1e-9:
        raise AssertionError(f"basis modes disagree on objectives: {deltas.max()}")
    return results


def bench_dispatch_modes(steps: int = 96, horizon_hours: int = 24) -> dict:
    needed = steps + horizon_hours + 1
    hours = np.arange(needed, dtype=float)

    def site(name, phase, cap):
        production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None) * cap * 2.0
        return SiteAsset(
            name=name,
            capacity_kw=cap,
            battery_kwh=0.4 * cap,
            energy_price_per_kwh=0.11,
            pue=1.2 + 0.15 * np.cos(hours / 7.0),
            production_kw=production,
        )

    sites = [site("west", 0.0, 20_000.0), site("east", 8.0, 20_000.0), site("south", 16.0, 20_000.0)]
    trace = TrafficModel(seed=5).synthesize(needed, total_capacity_kw=40_000.0)
    results = {}
    costs = {}
    for carry in (False, True):
        label = "carry-block" if carry else "projected"
        config = OperateConfig(
            steps=steps,
            horizon_hours=horizon_hours,
            forecast_error=0.15,
            energy_forecast="noisy-oracle",
            load_forecast="noisy-oracle",
            carry_block_status=carry,
        )
        best = None
        for _ in range(ROUNDS):
            harness = ReplayHarness(sites, trace, config, total_capacity_kw=40_000.0)
            started = time.perf_counter()
            outcome = harness.run("forecast")
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best["elapsed_s"]:
                best = {
                    "elapsed_s": elapsed,
                    "iterations": outcome.stats["simplex_iterations"],
                    "steps_per_s": steps / elapsed,
                }
            costs[label] = outcome.cost_usd
        results[label] = {
            "elapsed_s": round(best["elapsed_s"], 4),
            "simplex_iterations": int(best["iterations"]),
            "steps_per_s": round(best["steps_per_s"], 1),
        }
        print(
            f"dispatch loop [{label:>12}]: {best['elapsed_s']:.3f}s, "
            f"{best['iterations']} simplex iterations, "
            f"{best['steps_per_s']:.0f} steps/s"
        )
    delta = abs(costs["carry-block"] - costs["projected"]) / max(1.0, abs(costs["projected"]))
    if delta > 1e-9:
        raise AssertionError(f"dispatch basis modes disagree on realized cost: {delta}")
    return results


def main() -> dict:
    record = {
        "siting_swap_mix": bench_siting_modes(),
        "dispatch_slide_mix": bench_dispatch_modes(),
    }
    print(json.dumps(record, indent=2))
    return record


if __name__ == "__main__":
    main()
