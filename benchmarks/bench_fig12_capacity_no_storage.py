"""Fig. 12 — total provisioned compute capacity vs green percentage (no storage)."""

from conftest import BENCH_CAPACITY_KW, print_header
from repro.analysis.figures import GREEN_FRACTIONS, figure11_capacity_vs_green
from repro.analysis import format_table, series_to_rows
from repro.core import StorageMode


def test_fig12_capacity_vs_green_no_storage(benchmark, sweeps):
    results = benchmark.pedantic(sweeps.sweep, args=(StorageMode.NONE,), rounds=1, iterations=1)
    capacities = figure11_capacity_vs_green(results)
    net_capacities = figure11_capacity_vs_green(sweeps.sweep(StorageMode.NET_METERING))

    print_header("Figure 12: provisioned compute capacity vs green percentage (no storage), MW")
    rows = series_to_rows(capacities, "green_pct", [int(100 * f) for f in GREEN_FRACTIONS])
    print(format_table(rows))
    print(
        "paper shape: capacity stays at 50 MW until high green percentages; at 100 % "
        "green without storage the network over-provisions compute (the paper's "
        "solution reaches 150 MW across 3 datacenters)"
    )

    minimum_mw = BENCH_CAPACITY_KW / 1000.0
    both = capacities["wind_and_or_solar"]
    # The minimum capacity is always respected.
    assert all(value >= minimum_mw - 1e-3 for value in both)
    # Low green requirements need no over-provisioning even without storage.
    assert both[0] <= minimum_mw * 1.05
    # At 100 % green, the no-storage network provisions at least as much compute
    # as the net-metering one (and typically strictly more).
    assert both[-1] >= net_capacities["wind_and_or_solar"][-1] - 1e-3
