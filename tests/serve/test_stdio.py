"""The newline-delimited-JSON transport: batch dedup, typed error lines,
id matching, and the full SIGTERM drain through ``repro serve --stdin``."""

import asyncio
import io
import json
import os
import signal
import subprocess
import sys
import time

from repro.scenarios.spec import ScenarioSpec
from repro.serve import PlanServer, ServeConfig, serve_stdio

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def test_stdio_batch_dedups_and_types_errors():
    spec = ScenarioSpec(total_capacity_kw=30_000.0)
    solves = []

    def solve(parsed):
        solves.append(parsed.content_hash())
        time.sleep(0.05)
        return {"objective": 3.0}, False, {}

    lines = (
        "\n".join(
            [
                json.dumps({"id": 1, "spec": spec.to_dict()}),
                json.dumps({"id": 2, "spec": spec.to_dict()}),
                json.dumps({"id": 3, "spec": spec.to_dict()}),
                "",  # blank lines are skipped, not answered
                "this is not json",
                json.dumps({"id": 9, "spec": 42}),
            ]
        )
        + "\n"
    )
    server = PlanServer(ServeConfig(executor="thread", workers=2), solve_fn=solve)
    output = io.StringIO()

    code = asyncio.run(serve_stdio(server, io.StringIO(lines), output))

    assert code == 0
    responses = [json.loads(line) for line in output.getvalue().splitlines()]
    assert len(responses) == 5
    by_id = {response["id"]: response for response in responses}
    # Three identical lines collapse onto one solve; ids still match back.
    assert len(solves) == 1
    assert [by_id[i]["status"] for i in (1, 2, 3)] == ["ok"] * 3
    assert sorted(by_id[i]["dedup"] for i in (1, 2, 3)) == [False, True, True]
    assert by_id[None]["error"] == "bad_request"
    assert by_id[9]["error"] == "spec_error"
    assert server.metrics.dedup_hits == 2
    assert server.metrics.solves_started == 1


def test_eof_drains_and_exits_zero_with_no_input():
    server = PlanServer(
        ServeConfig(executor="thread"), solve_fn=lambda spec: ({}, False, {})
    )
    output = io.StringIO()
    code = asyncio.run(serve_stdio(server, io.StringIO(""), output))
    assert code == 0
    assert output.getvalue() == ""
    assert server.draining


def test_sigterm_drains_in_flight_work_before_exit():
    """The deployment contract: SIGTERM answers admitted requests, then exit 0."""
    spec = ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search={
            "keep_locations": 4,
            "max_iterations": 3,
            "patience": 3,
            "num_chains": 1,
            "seed": 3,
            "max_datacenters": 3,
        },
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--stdin",
            "--executor",
            "serial",
            "--no-cache",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        # First request doubles as the readiness probe: once its response
        # line arrives, the event loop is up and the signal handler is in.
        process.stdin.write(json.dumps({"id": "warm", "spec": spec.to_dict()}) + "\n")
        process.stdin.flush()
        warm = json.loads(process.stdout.readline())
        assert warm["id"] == "warm" and warm["status"] == "ok"
        second = spec.with_updates(total_capacity_kw=25_000.0)
        process.stdin.write(json.dumps({"id": "sig", "spec": second.to_dict()}) + "\n")
        process.stdin.flush()
        time.sleep(0.1)  # the request is admitted (likely mid-solve)
        process.send_signal(signal.SIGTERM)
        # stdin stays OPEN: exit must come from the signal-triggered drain,
        # not from EOF.
        process.wait(timeout=120)
        stdout = process.stdout.read()
        stderr = process.stderr.read()
        process.stdin.close()
    except Exception:
        process.kill()
        raise
    assert process.returncode == 0, stderr
    responses = [json.loads(line) for line in stdout.splitlines() if line.strip()]
    assert len(responses) == 1
    assert responses[0]["status"] == "ok"
    assert responses[0]["id"] == "sig"
