"""Wire-protocol round-trips: request parsing, typed errors, canonical encoding."""

import json

import pytest

from repro.scenarios.spec import ScenarioSpec
from repro.serve import (
    ERROR_STATUS,
    SpecError,
    encode_response,
    error_response,
    http_status,
    ok_response,
    parse_request,
    parse_request_line,
)
from repro.serve.protocol import request_id_of


class TestParseRequest:
    def test_bare_spec_round_trips(self):
        spec = ScenarioSpec(name="bare", total_capacity_kw=40_000.0)
        request = parse_request(spec.to_dict())
        assert request.id is None
        assert request.spec == spec

    def test_envelope_carries_id_and_spec(self):
        spec = ScenarioSpec(name="env")
        for request_id in ("client-7", 7):
            request = parse_request({"id": request_id, "spec": spec.to_dict()})
            assert request.id == request_id
            assert request.spec.content_hash() == spec.content_hash()

    def test_name_does_not_change_the_content_hash(self):
        # Dedup keys on semantics: the label is not part of the plan.
        a = parse_request({"spec": ScenarioSpec(name="a").to_dict()})
        b = parse_request({"spec": ScenarioSpec(name="b").to_dict()})
        assert a.spec.content_hash() == b.spec.content_hash()

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            42,
            None,
            ["list"],
            {"spec": 42},
            {"spec": {"no_such_field": 1}},
            {"id": "x", "spec": {}, "surprise": 1},
            {"id": True, "spec": {}},
            {"id": 1.5, "spec": {}},
        ],
    )
    def test_malformed_payloads_raise_spec_error(self, payload):
        with pytest.raises(SpecError):
            parse_request(payload)

    def test_request_line_parses_and_rejects(self):
        spec = ScenarioSpec()
        line = json.dumps({"id": 3, "spec": spec.to_dict()})
        assert parse_request_line(line).id == 3
        with pytest.raises(SpecError):
            parse_request_line("{broken json")

    def test_request_id_of_is_best_effort(self):
        assert request_id_of({"id": "a"}) == "a"
        assert request_id_of({"id": 3}) == 3
        assert request_id_of({"id": True}) is None
        assert request_id_of({"id": [1]}) is None
        assert request_id_of("garbage") is None


class TestResponses:
    def test_ok_response_shape(self):
        response = ok_response(
            "r1",
            content_hash="abc",
            record={"objective": 1.0},
            from_cache=True,
            dedup=False,
            elapsed_s=0.1234567,
        )
        assert response["status"] == "ok"
        assert response["id"] == "r1"
        assert response["content_hash"] == "abc"
        assert response["from_cache"] is True
        assert response["dedup"] is False
        assert response["elapsed_s"] == pytest.approx(0.123457)
        assert http_status(response) == 200

    def test_error_kinds_map_to_http_statuses(self):
        for kind, status in ERROR_STATUS.items():
            response = error_response(kind, "why", "id-1")
            assert response["status"] == "error"
            assert response["error"] == kind
            assert http_status(response) == status

    def test_unknown_error_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown error kind"):
            error_response("nope", "message")

    def test_encoding_is_canonical(self):
        # Key order must not leak into the encoding: the differential
        # server-vs-direct tests compare these strings byte for byte.
        one = encode_response({"b": 1, "a": {"y": 2, "x": 3}})
        two = encode_response({"a": {"x": 3, "y": 2}, "b": 1})
        assert one == two
        assert json.loads(one) == {"a": {"x": 3, "y": 2}, "b": 1}
