"""HTTP front-end round-trips, error statuses, and the server-vs-direct
differential: a record served over ``POST /plan`` must be bit-identical to
what a fresh :class:`ExperimentRunner` computes for the same spec."""

import asyncio
import json

from repro.scenarios import ExperimentRunner, ScenarioSpec
from repro.serve import HttpFrontend, PlanServer, ServeConfig

TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )


async def http_request(reader, writer, method, path, payload=None, raw_body=None):
    """One keep-alive request/response exchange on an open connection."""
    body = raw_body if raw_body is not None else (
        b"" if payload is None else json.dumps(payload).encode("utf-8")
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: localhost\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    data = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, json.loads(data)


def test_plan_round_trip_is_bit_identical_to_direct_run():
    spec = tiny_spec()

    async def scenario():
        server = PlanServer(ServeConfig(executor="serial", cache_dir=None))
        frontend = HttpFrontend(server, port=0)
        await frontend.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
            status, first = await http_request(
                reader, writer, "POST", "/plan", {"id": "r1", "spec": spec.to_dict()}
            )
            assert status == 200
            # Same connection, same spec: keep-alive works and the runner's
            # futures memo answers without re-solving.
            status2, second = await http_request(
                reader, writer, "POST", "/plan", {"id": "r2", "spec": spec.to_dict()}
            )
            assert status2 == 200
            status_m, metrics = await http_request(reader, writer, "GET", "/metrics")
            status_h, health = await http_request(reader, writer, "GET", "/healthz")
            writer.close()
            await writer.wait_closed()
        finally:
            await frontend.stop(grace_s=10.0)
        return first, second, (status_m, metrics), (status_h, health)

    first, second, (status_m, metrics), (status_h, health) = asyncio.run(scenario())
    assert first["status"] == "ok" and first["id"] == "r1"
    assert second["status"] == "ok" and second["id"] == "r2"
    assert first["content_hash"] == spec.content_hash()
    assert json.dumps(second["record"], sort_keys=True) == json.dumps(
        first["record"], sort_keys=True
    )
    assert status_m == 200
    assert metrics["responses_ok"] == 2
    assert metrics["worker_caches"]["workers_reporting"] >= 1
    assert status_h == 200 and health["status"] == "ok"

    # The differential gate: server responses ARE sweep results, bit for bit.
    direct = ExperimentRunner(cache_dir=None, workers=1, executor="serial").run_point(spec)
    assert json.dumps(first["record"], sort_keys=True) == json.dumps(
        direct.record, sort_keys=True
    )


def test_http_error_paths_and_draining():
    async def scenario():
        server = PlanServer(ServeConfig(executor="serial", cache_dir=None))
        frontend = HttpFrontend(server, port=0)
        await frontend.start()
        results = {}
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
            results["get_plan"] = await http_request(reader, writer, "GET", "/plan")
            results["unknown"] = await http_request(reader, writer, "GET", "/nope")
            results["bad_json"] = await http_request(
                reader, writer, "POST", "/plan", raw_body=b"{not json"
            )
            results["bad_spec"] = await http_request(
                reader, writer, "POST", "/plan", {"id": 9, "spec": 42}
            )
            # Flip to draining mid-connection: health goes 503 and new plan
            # requests are refused with the typed kind.
            await server.drain(grace_s=1.0)
            results["drain_health"] = await http_request(reader, writer, "GET", "/healthz")
            results["drain_plan"] = await http_request(
                reader, writer, "POST", "/plan", {"spec": {}}
            )
            writer.close()
            await writer.wait_closed()
        finally:
            await frontend.stop(grace_s=1.0)
        return results

    results = asyncio.run(scenario())
    status, body = results["get_plan"]
    assert status == 405 and body["error"] == "method_not_allowed"
    status, body = results["unknown"]
    assert status == 404 and body["error"] == "not_found"
    status, body = results["bad_json"]
    assert status == 400 and body["error"] == "bad_request"
    status, body = results["bad_spec"]
    assert status == 400 and body["error"] == "spec_error" and body["id"] == 9
    status, body = results["drain_health"]
    assert status == 503 and body["status"] == "draining"
    status, body = results["drain_plan"]
    assert status == 503 and body["error"] == "draining"


def test_oversized_body_is_refused():
    from repro.serve.http import MAX_BODY_BYTES

    async def scenario():
        server = PlanServer(ServeConfig(executor="serial", cache_dir=None))
        frontend = HttpFrontend(server, port=0)
        await frontend.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
            head = (
                "POST /plan HTTP/1.1\r\n"
                "Host: localhost\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            writer.close()
            await writer.wait_closed()
        finally:
            await frontend.stop(grace_s=1.0)
        return status

    assert asyncio.run(scenario()) == 413
