"""Admission pipeline semantics, tested through the ``solve_fn`` seam.

Every test drives :meth:`PlanServer.handle` directly with a fake solver, so
dedup, admission control, waiter timeouts, draining and error typing are
exercised without a single LP solve.
"""

import asyncio
import threading
import time

import pytest

from repro.scenarios.spec import ScenarioSpec
from repro.serve import PlanServer, ServeConfig


def run(coroutine):
    return asyncio.run(coroutine)


def payload(request_id=None, **updates):
    spec = ScenarioSpec(**updates) if updates else ScenarioSpec()
    body = {"spec": spec.to_dict()}
    if request_id is not None:
        body["id"] = request_id
    return body


def instant_solver(record=None):
    def solve(spec):
        return dict(record or {"objective": 1.0}), False, {}

    return solve


class TestConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ServeConfig(executor="quantum")
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(workers=0)
        with pytest.raises(ValueError, match="queue_limit"):
            ServeConfig(queue_limit=0)
        with pytest.raises(ValueError, match="timeout_s"):
            ServeConfig(timeout_s=0.0)

    def test_none_timeout_means_wait_forever(self):
        assert ServeConfig(timeout_s=None).timeout_s is None


class TestDedup:
    def test_identical_concurrent_requests_share_one_solve(self):
        solves = []

        def solve(spec):
            solves.append(spec.content_hash())
            time.sleep(0.05)
            return {"v": 1}, False, {}

        server = PlanServer(ServeConfig(executor="thread", workers=2), solve_fn=solve)

        async def scenario():
            responses = await asyncio.gather(
                server.handle(payload("a")),
                server.handle(payload("b")),
                server.handle(payload("c")),
            )
            await server.drain(grace_s=5.0)
            return responses

        responses = run(scenario())
        assert len(solves) == 1
        assert [r["status"] for r in responses] == ["ok"] * 3
        assert sorted(r["dedup"] for r in responses) == [False, True, True]
        assert {r["id"] for r in responses} == {"a", "b", "c"}
        assert len({r["content_hash"] for r in responses}) == 1
        assert server.metrics.solves_started == 1
        assert server.metrics.dedup_hits == 2
        assert server.metrics.responses_ok == 3

    def test_semantically_equal_specs_dedup_despite_labels(self):
        # name/description are excluded from the content hash on purpose.
        server = PlanServer(ServeConfig(executor="thread"), solve_fn=instant_solver())

        async def scenario():
            first = await server.handle(payload("x", name="morning run"))
            second = await server.handle(payload("y", name="evening run"))
            await server.drain(grace_s=5.0)
            return first, second

        first, second = run(scenario())
        assert first["content_hash"] == second["content_hash"]
        # Sequential requests: the first solve already finished, so the
        # second goes through the runner's own cache path, not live dedup.
        assert server.metrics.solves_started == 2

    def test_distinct_specs_solve_separately(self):
        server = PlanServer(ServeConfig(executor="thread"), solve_fn=instant_solver())

        async def scenario():
            responses = await asyncio.gather(
                server.handle(payload("a", total_capacity_kw=10_000.0)),
                server.handle(payload("b", total_capacity_kw=20_000.0)),
            )
            await server.drain(grace_s=5.0)
            return responses

        responses = run(scenario())
        assert [r["status"] for r in responses] == ["ok", "ok"]
        assert len({r["content_hash"] for r in responses}) == 2
        assert server.metrics.solves_started == 2
        assert server.metrics.dedup_hits == 0


class TestAdmission:
    def test_overload_rejects_distinct_but_admits_identical(self):
        gate = threading.Event()

        def solve(spec):
            gate.wait(5.0)
            return {"v": 1}, False, {}

        server = PlanServer(
            ServeConfig(executor="thread", workers=2, queue_limit=1), solve_fn=solve
        )

        async def scenario():
            first = asyncio.ensure_future(server.handle(payload("a")))
            await asyncio.sleep(0.05)
            overloaded = await server.handle(payload("b", total_capacity_kw=1000.0))
            # Deduped waiters are free: the herd never trips admission.
            attached = asyncio.ensure_future(server.handle(payload("c")))
            await asyncio.sleep(0.05)
            gate.set()
            first_r, attached_r = await asyncio.gather(first, attached)
            await server.drain(grace_s=5.0)
            return first_r, overloaded, attached_r

        first, overloaded, attached = run(scenario())
        assert first["status"] == "ok"
        assert overloaded["status"] == "error"
        assert overloaded["error"] == "overloaded"
        assert overloaded["id"] == "b"
        assert attached["status"] == "ok"
        assert attached["dedup"] is True
        assert server.metrics.errors["overloaded"] == 1

    def test_waiter_timeout_leaves_the_solve_running(self):
        release = threading.Event()
        solves = []

        def solve(spec):
            solves.append(1)
            release.wait(5.0)
            return {"v": 1}, False, {}

        server = PlanServer(
            ServeConfig(executor="thread", workers=2, timeout_s=0.05), solve_fn=solve
        )

        async def scenario():
            timed_out = await server.handle(payload("slow"))
            release.set()
            retry = await server.handle(payload("retry"))
            await server.drain(grace_s=5.0)
            return timed_out, retry

        timed_out, retry = run(scenario())
        assert timed_out["status"] == "error"
        assert timed_out["error"] == "timeout"
        assert timed_out["id"] == "slow"
        assert retry["status"] == "ok"
        assert server.metrics.errors["timeout"] == 1

    def test_draining_server_rejects_new_work(self):
        server = PlanServer(ServeConfig(executor="thread"), solve_fn=instant_solver())

        async def scenario():
            await server.drain(grace_s=1.0)
            return await server.handle(payload("late"))

        response = run(scenario())
        assert response["status"] == "error"
        assert response["error"] == "draining"
        assert response["id"] == "late"


class TestErrors:
    def test_malformed_payloads_get_typed_spec_errors(self):
        server = PlanServer(ServeConfig(executor="thread"), solve_fn=instant_solver())

        async def scenario():
            bad_shape = await server.handle("not an object")
            bad_field = await server.handle({"id": 4, "spec": {"bogus": 1}})
            await server.drain(grace_s=1.0)
            return bad_shape, bad_field

        bad_shape, bad_field = run(scenario())
        assert bad_shape["error"] == "spec_error"
        assert bad_field["error"] == "spec_error"
        assert bad_field["id"] == 4  # best-effort id echo on parse failures
        assert server.metrics.errors["spec_error"] == 2
        assert server.metrics.solves_started == 0

    def test_solver_crash_becomes_typed_internal_error(self):
        def solve(spec):
            raise RuntimeError("catalogue imploded")

        server = PlanServer(ServeConfig(executor="thread"), solve_fn=solve)

        async def scenario():
            response = await server.handle(payload("boom"))
            await server.drain(grace_s=1.0)
            return response

        response = run(scenario())
        assert response["status"] == "error"
        assert response["error"] == "internal"
        assert "catalogue imploded" in response["message"]
        assert server.metrics.errors["internal"] == 1


class TestObservability:
    def test_snapshot_reports_counters_and_caches(self):
        server = PlanServer(
            ServeConfig(executor="thread"), solve_fn=instant_solver({"objective": 2.0})
        )

        async def scenario():
            await server.handle(payload("one"))
            snapshot = server.metrics_snapshot()
            health = server.health()
            await server.drain(grace_s=1.0)
            return snapshot, health

        snapshot, health = run(scenario())
        assert snapshot["requests_total"] == 1
        assert snapshot["responses_ok"] == 1
        assert snapshot["latency"]["count"] == 1
        assert snapshot["latency"]["p50_s"] >= 0.0
        assert snapshot["executor"] == "thread"
        assert snapshot["queue_limit"] == 64
        # Thread mode reports the in-parent runner through the same
        # worker-stats channel process workers use.
        assert snapshot["worker_caches"]["workers_reporting"] >= 1
        assert health == {
            "status": "ok",
            "in_flight": 0,
            "waiters": 0,
            "executor": "thread",
        }
