"""Tests for the PUE curve, battery bank and net-metering policy."""

import numpy as np
import pytest

from repro.energy import BatteryBank, NetMeteringPolicy, PUEModel


class TestPUEModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PUEModel()

    def test_validation(self):
        with pytest.raises(ValueError):
            PUEModel(min_pue=0.9)
        with pytest.raises(ValueError):
            PUEModel(economizer_pue=2.0)
        with pytest.raises(ValueError):
            PUEModel(free_cooling_limit_c=40.0, economizer_limit_c=30.0)

    def test_flat_below_free_cooling_limit(self, model):
        assert model.pue(0.0) == pytest.approx(model.min_pue)
        assert model.pue(15.0) == pytest.approx(model.min_pue)

    def test_fig4_shape_monotonic(self, model):
        temperatures, pues = model.curve(15.0, 45.0, 1.0)
        assert pues[0] == pytest.approx(1.05, abs=0.01)
        assert pues[-1] == pytest.approx(1.40, abs=0.01)
        assert np.all(np.diff(pues) >= -1e-12)

    def test_clipped_above_peak(self, model):
        assert model.pue(60.0) == pytest.approx(model.max_pue)

    def test_scalar_and_vector_interfaces(self, model):
        scalar = model.pue(25.0)
        vector = model.series(np.array([25.0, 35.0]))
        assert isinstance(scalar, float)
        assert vector.shape == (2,)
        assert vector[0] == pytest.approx(scalar)

    def test_paper_average_range(self, model):
        # Mild climates (10-25 degC) should land in the paper's 1.05-1.13 band.
        temps = np.random.default_rng(0).uniform(5, 25, 1000)
        assert 1.04 <= float(np.mean(model.series(temps))) <= 1.13


class TestBatteryBank:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryBank(capacity_kwh=-1.0)
        with pytest.raises(ValueError):
            BatteryBank(capacity_kwh=10.0, charge_efficiency=0.0)
        with pytest.raises(ValueError):
            BatteryBank(capacity_kwh=10.0, level_kwh=20.0)

    def test_charge_applies_efficiency(self):
        battery = BatteryBank(capacity_kwh=100.0, charge_efficiency=0.75)
        absorbed = battery.charge(10.0)
        assert absorbed == pytest.approx(10.0)
        assert battery.level_kwh == pytest.approx(7.5)

    def test_charge_respects_capacity(self):
        battery = BatteryBank(capacity_kwh=6.0, charge_efficiency=0.75)
        absorbed = battery.charge(100.0)
        assert battery.level_kwh == pytest.approx(6.0)
        assert absorbed == pytest.approx(8.0)  # 6 kWh stored / 0.75 efficiency

    def test_discharge_limited_by_level(self):
        battery = BatteryBank(capacity_kwh=10.0, level_kwh=4.0)
        delivered = battery.discharge(10.0)
        assert delivered == pytest.approx(4.0)
        assert battery.level_kwh == pytest.approx(0.0)

    def test_negative_amounts_rejected(self):
        battery = BatteryBank(capacity_kwh=10.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0)
        with pytest.raises(ValueError):
            battery.discharge(-1.0)

    def test_reset(self):
        battery = BatteryBank(capacity_kwh=10.0, level_kwh=5.0)
        battery.reset(2.0)
        assert battery.level_kwh == pytest.approx(2.0)
        with pytest.raises(ValueError):
            battery.reset(100.0)

    def test_headroom(self):
        battery = BatteryBank(capacity_kwh=10.0, level_kwh=4.0)
        assert battery.headroom_kwh == pytest.approx(6.0)


class TestNetMeteringPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetMeteringPolicy(credit_fraction=1.5)

    def test_disallowed_policy(self):
        policy = NetMeteringPolicy.disallowed()
        assert not policy.allowed
        with pytest.raises(ValueError):
            policy.settlement_cost(1.0, 0.0, 0.1)

    def test_full_credit_storage_is_free(self):
        policy = NetMeteringPolicy(credit_fraction=1.0)
        # Banking X kWh and later drawing X kWh back nets to zero cost.
        cost = policy.settlement_cost(drawn_kwh=100.0, pushed_kwh=100.0, retail_price_per_kwh=0.1)
        assert cost == pytest.approx(0.0)

    def test_partial_credit_costs_money(self):
        policy = NetMeteringPolicy(credit_fraction=0.5)
        cost = policy.settlement_cost(100.0, 100.0, 0.1)
        assert cost == pytest.approx(5.0)

    def test_negative_energy_rejected(self):
        policy = NetMeteringPolicy()
        with pytest.raises(ValueError):
            policy.settlement_cost(-1.0, 0.0, 0.1)
