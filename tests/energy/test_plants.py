"""Tests for the solar and wind production models."""

import numpy as np
import pytest

from repro.energy import SolarPanelModel, WindTurbineModel


class TestSolarPanelModel:
    @pytest.fixture(scope="class")
    def model(self):
        return SolarPanelModel()

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarPanelModel(module_efficiency=0.0)
        with pytest.raises(ValueError):
            SolarPanelModel(inverter_efficiency=1.5)
        with pytest.raises(ValueError):
            SolarPanelModel(temperature_coefficient=0.01)

    def test_zero_irradiance_gives_zero(self, model):
        assert model.production_fraction(np.array([0.0]), np.array([25.0]))[0] == 0.0

    def test_stc_production_close_to_inverter_efficiency(self, model):
        # 1000 W/m^2 heats the cell above 25 degC, so output is slightly below
        # the inverter efficiency.
        fraction = model.production_fraction(np.array([1000.0]), np.array([25.0]))[0]
        assert 0.75 <= fraction <= model.inverter_efficiency

    def test_output_bounded(self, model):
        ghi = np.linspace(0, 1400, 100)
        temps = np.linspace(-20, 50, 100)
        fraction = model.production_fraction(ghi, temps)
        assert np.all(fraction >= 0.0) and np.all(fraction <= 1.0)

    def test_hot_cells_produce_less(self, model):
        cool = model.production_fraction(np.array([800.0]), np.array([5.0]))[0]
        hot = model.production_fraction(np.array([800.0]), np.array([45.0]))[0]
        assert hot < cool

    def test_cell_temperature_above_ambient_under_sun(self, model):
        cell = model.cell_temperature_c(np.array([20.0]), np.array([800.0]))[0]
        assert cell > 20.0

    def test_area_per_kw_near_table1_value(self, model):
        # Table I instantiates areaSolar = 9.41 m^2/kW.
        assert model.area_per_kw_m2() == pytest.approx(9.41, rel=0.05)


class TestWindTurbineModel:
    @pytest.fixture(scope="class")
    def model(self):
        return WindTurbineModel()

    def test_validation(self):
        with pytest.raises(ValueError):
            WindTurbineModel(conversion_efficiency=0.0)
        with pytest.raises(ValueError):
            WindTurbineModel(cut_in_speed_m_s=10.0, rated_speed_m_s=5.0)

    def test_below_cut_in_no_power(self, model):
        assert model.power_curve_fraction(np.array([2.0]))[0] == 0.0

    def test_above_cut_out_no_power(self, model):
        assert model.power_curve_fraction(np.array([30.0]))[0] == 0.0

    def test_rated_region_full_power(self, model):
        fraction = model.power_curve_fraction(np.array([20.0]))[0]
        assert fraction == pytest.approx(1.0)

    def test_monotonic_between_cut_in_and_rated(self, model):
        speeds = np.linspace(3.0, 13.0, 30)
        curve = model.power_curve_fraction(speeds)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_production_includes_conversion_losses(self, model):
        production = model.production_fraction(np.array([20.0]))[0]
        assert production == pytest.approx(model.conversion_efficiency, abs=1e-9)

    def test_thin_air_reduces_output_below_rated(self, model):
        sea_level = model.production_fraction(np.array([8.0]), 101.325, 15.0)[0]
        altitude = model.production_fraction(np.array([8.0]), 80.0, 15.0)[0]
        assert altitude < sea_level

    def test_density_does_not_exceed_rated(self, model):
        # Very dense, cold air cannot push the turbine above nameplate.
        production = model.production_fraction(np.array([20.0]), 105.0, -30.0)[0]
        assert production <= 1.0

    def test_output_bounded(self, model):
        speeds = np.linspace(0, 40, 200)
        production = model.production_fraction(speeds)
        assert np.all(production >= 0.0) and np.all(production <= 1.0)

    def test_air_density_formula(self, model):
        density = model.air_density(np.array([101.325]), np.array([15.0]))[0]
        assert density == pytest.approx(1.225, rel=0.01)

    def test_area_per_kw_near_table1_value(self, model):
        # Table I instantiates areaWind = 18.21 m^2/kW.
        assert model.area_per_kw_m2() == pytest.approx(18.21, rel=0.1)
