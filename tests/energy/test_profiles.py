"""Tests for epoch grids, series calibration and location profiles."""

import numpy as np
import pytest

from repro.energy import EpochGrid, LocationProfile, calibrate_series, capacity_factor
from repro.energy.capacity_factor import annual_energy_kwh


class TestCalibrateSeries:
    def test_hits_target_mean(self):
        series = np.array([0.0, 0.2, 0.4, 0.1])
        calibrated = calibrate_series(series, 0.3)
        assert float(calibrated.mean()) == pytest.approx(0.3, abs=1e-3)

    def test_preserves_zeros_shape(self):
        series = np.array([0.0, 0.5, 1.0, 0.0])
        calibrated = calibrate_series(series, 0.2)
        assert calibrated[0] == 0.0 and calibrated[3] == 0.0

    def test_respects_upper_bound(self):
        series = np.array([0.1, 0.9, 0.95, 0.2])
        calibrated = calibrate_series(series, 0.6)
        assert np.all(calibrated <= 1.0 + 1e-12)
        assert float(calibrated.mean()) == pytest.approx(0.6, abs=5e-3)

    def test_zero_target(self):
        calibrated = calibrate_series(np.array([0.3, 0.6]), 0.0)
        assert np.all(calibrated == 0.0)

    def test_all_zero_series_becomes_flat(self):
        calibrated = calibrate_series(np.zeros(4), 0.25)
        assert np.all(calibrated == pytest.approx(0.25))

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_series(np.array([0.1]), 1.5)


class TestCapacityFactor:
    def test_simple_mean(self):
        assert capacity_factor(np.array([0.0, 0.5, 1.0])) == pytest.approx(0.5)

    def test_weighted_mean(self):
        cf = capacity_factor(np.array([0.0, 1.0]), weights=np.array([1.0, 3.0]))
        assert cf == pytest.approx(0.75)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            capacity_factor(np.array([1.5]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            capacity_factor(np.array([]))

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            capacity_factor(np.array([0.5, 0.5]), weights=np.array([1.0]))

    def test_annual_energy(self):
        energy = annual_energy_kwh(100.0, np.array([0.5, 0.5]), hours_per_step=2.0)
        assert energy == pytest.approx(200.0)

    def test_annual_energy_with_weights(self):
        energy = annual_energy_kwh(10.0, np.array([0.5, 1.0]), weights=np.array([10.0, 20.0]))
        assert energy == pytest.approx(10.0 * (0.5 * 10 + 1.0 * 20))

    def test_annual_energy_negative_capacity(self):
        with pytest.raises(ValueError):
            annual_energy_kwh(-1.0, np.array([0.5]))


class TestEpochGrid:
    def test_from_seasons_default(self):
        grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)
        assert grid.num_epochs == 4 * 8
        assert grid.epochs_per_day == 8
        assert grid.day_weight == pytest.approx(365 / 4)

    def test_weights_sum_to_year(self):
        grid = EpochGrid.from_seasons(days_per_season=2, hours_per_epoch=2)
        assert grid.epoch_weights_hours().sum() == pytest.approx(8760.0)

    def test_invalid_hours_per_epoch(self):
        with pytest.raises(ValueError):
            EpochGrid(representative_days=(1,), hours_per_epoch=5)

    def test_invalid_day(self):
        with pytest.raises(ValueError):
            EpochGrid(representative_days=(400,), hours_per_epoch=1)

    def test_empty_days(self):
        with pytest.raises(ValueError):
            EpochGrid(representative_days=(), hours_per_epoch=1)

    def test_aggregate_means_hours(self):
        grid = EpochGrid(representative_days=(0,), hours_per_epoch=6)
        hourly = np.arange(8760, dtype=float)
        aggregated = grid.aggregate(hourly)
        assert aggregated.shape == (4,)
        assert aggregated[0] == pytest.approx(np.mean(np.arange(6)))

    def test_hour_indices_shape(self):
        grid = EpochGrid(representative_days=(0, 100), hours_per_epoch=4)
        indices = grid.hour_indices()
        assert indices.shape == (12, 4)
        assert indices[0, 0] == 0
        assert indices[6, 0] == 100 * 24


class TestProfileBuilder:
    def test_build_all_shares_grid(self, profile_builder, epoch_grid, small_catalog):
        profiles = profile_builder.build_all(epoch_grid, names=small_catalog.names[:5])
        assert len(profiles) == 5
        for profile in profiles:
            assert profile.epochs is epoch_grid
            assert profile.solar_alpha.shape == (epoch_grid.num_epochs,)

    def test_profiles_cached(self, profile_builder, epoch_grid, small_catalog):
        location = small_catalog.get("Nairobi, Kenya")
        assert profile_builder.build(location, epoch_grid) is profile_builder.build(
            location, epoch_grid
        )

    def test_anchor_calibration_applied(self, anchor_profiles):
        mount_washington = anchor_profiles["Mount Washington, NH, USA"]
        assert mount_washington.wind_capacity_factor == pytest.approx(0.556, abs=0.01)
        assert mount_washington.max_pue == pytest.approx(1.06, abs=0.01)
        harare = anchor_profiles["Harare, Zimbabwe"]
        assert harare.solar_capacity_factor == pytest.approx(0.224, abs=0.01)

    def test_anchor_prices_carried(self, anchor_profiles):
        mount_washington = anchor_profiles["Mount Washington, NH, USA"]
        assert mount_washington.land_price_per_m2 == pytest.approx(947.0)
        assert mount_washington.energy_price_per_kwh == pytest.approx(0.126)
        assert mount_washington.distance_power_km == pytest.approx(345.0)

    def test_series_bounds(self, all_profiles):
        for profile in all_profiles:
            assert np.all(profile.solar_alpha >= 0.0) and np.all(profile.solar_alpha <= 1.0)
            assert np.all(profile.wind_beta >= 0.0) and np.all(profile.wind_beta <= 1.0)
            assert np.all(profile.pue >= 1.0)

    def test_capacity_factor_distribution_matches_paper_range(self, all_profiles):
        solar = [p.solar_capacity_factor for p in all_profiles]
        wind = [p.wind_capacity_factor for p in all_profiles]
        # Fig. 3: solar capacity factors are mostly 5-23 %, wind reaches ~55 %.
        assert 0.03 <= min(solar) and max(solar) <= 0.30
        assert max(wind) >= 0.40
        assert min(wind) < 0.15

    def test_utc_alignment_offsets_solar_peaks(self, profile_builder, hourly_grid, small_catalog):
        """Locations far apart in longitude peak at different UTC epochs."""
        american = profile_builder.build(small_catalog.get("Mexico City, Mexico"), hourly_grid)
        asian = profile_builder.build(small_catalog.get("Andersen, Guam"), hourly_grid)
        day_american = american.solar_alpha[:24]
        day_asian = asian.solar_alpha[:24]
        peak_american = int(np.argmax(day_american))
        peak_asian = int(np.argmax(day_asian))
        separation = min((peak_american - peak_asian) % 24, (peak_asian - peak_american) % 24)
        assert separation >= 6  # roughly half a world apart

    def test_profile_validation(self, anchor_profiles, epoch_grid):
        good = anchor_profiles["Nairobi, Kenya"]
        with pytest.raises(ValueError):
            LocationProfile(
                location=good.location,
                epochs=epoch_grid,
                solar_alpha=np.zeros(3),
                wind_beta=np.zeros(epoch_grid.num_epochs),
                pue=np.ones(epoch_grid.num_epochs),
                land_price_per_m2=10.0,
                energy_price_per_kwh=0.1,
                distance_power_km=10.0,
                distance_network_km=10.0,
                near_plant_capacity_kw=1e6,
            )

    def test_profile_pue_below_one_rejected(self, anchor_profiles, epoch_grid):
        good = anchor_profiles["Nairobi, Kenya"]
        with pytest.raises(ValueError):
            LocationProfile(
                location=good.location,
                epochs=epoch_grid,
                solar_alpha=np.zeros(epoch_grid.num_epochs),
                wind_beta=np.zeros(epoch_grid.num_epochs),
                pue=np.full(epoch_grid.num_epochs, 0.9),
                land_price_per_m2=10.0,
                energy_price_per_kwh=0.1,
                distance_power_km=10.0,
                distance_network_km=10.0,
                near_plant_capacity_kw=1e6,
            )
