"""Behavioural tests: prediction noise, planner edge cases and emulation options."""

import numpy as np
import pytest

from repro.greennebula import (
    EmulatedCloud,
    EmulationConfig,
    GreenDatacenter,
    GreenEnergyPredictor,
    GreenNebulaScheduler,
    MigrationPlanner,
    VirtualMachine,
)
from repro.greennebula.emulation import DatacenterSpec
from repro.simulation import VMSpec


FLEET_KW = 6 * 0.03


@pytest.fixture(scope="module")
def two_site_specs(anchor_profiles):
    return [
        DatacenterSpec(
            name="Mexico City, Mexico",
            profile=anchor_profiles["Mexico City, Mexico"],
            it_capacity_kw=FLEET_KW * 1.5,
            solar_kw=FLEET_KW * 6.0,
        ),
        DatacenterSpec(
            name="Andersen, Guam",
            profile=anchor_profiles["Andersen, Guam"],
            it_capacity_kw=FLEET_KW * 1.5,
            solar_kw=FLEET_KW * 6.0,
        ),
    ]


class TestPredictionNoiseEffect:
    def test_noisy_predictor_still_schedules(self, anchor_profiles):
        dc = GreenDatacenter(
            name="Harare, Zimbabwe",
            profile=anchor_profiles["Harare, Zimbabwe"],
            it_capacity_kw=1.0,
            solar_kw=5.0,
        )
        dc.provision_hosts(2)
        dc.manager.deploy(VirtualMachine(spec=VMSpec(name="one")))
        scheduler = GreenNebulaScheduler(
            [dc], predictor=GreenEnergyPredictor(horizon_hours=24, noise_std=0.3, seed=2),
            horizon_hours=24,
        )
        decision = scheduler.schedule(6.0)
        assert decision.target_power_kw["Harare, Zimbabwe"] >= 0.0

    def test_noise_changes_forecasts_not_reality(self, anchor_profiles):
        dc = GreenDatacenter(
            name="Nairobi, Kenya",
            profile=anchor_profiles["Nairobi, Kenya"],
            it_capacity_kw=1.0,
            solar_kw=5.0,
        )
        noisy = GreenEnergyPredictor(horizon_hours=24, noise_std=0.4, seed=1).predict(dc, 0.0)
        exact = dc.green_power_forecast_kw(0.0, 24)
        assert noisy.shape == exact.shape
        assert not np.allclose(noisy, exact)


class TestPlannerEdgeCases:
    def test_targets_above_current_produce_no_migrations(self, anchor_profiles):
        dc = GreenDatacenter(
            name="Kiev, Ukraine",
            profile=anchor_profiles["Kiev, Ukraine"],
            it_capacity_kw=1.0,
        )
        dc.provision_hosts(1)
        planner = MigrationPlanner()
        assert planner.plan([dc], {"Kiev, Ukraine": 5.0}) == []

    def test_receiver_without_room_is_skipped(self, anchor_profiles):
        donor = GreenDatacenter(
            name="Kiev, Ukraine", profile=anchor_profiles["Kiev, Ukraine"], it_capacity_kw=1.0
        )
        receiver = GreenDatacenter(
            name="Berlin, Germany", profile=anchor_profiles["Berlin, Germany"], it_capacity_kw=1.0
        )
        donor.provision_hosts(2)
        # The receiver has no hosts at all, so nothing can actually land there.
        for index in range(3):
            donor.manager.deploy(VirtualMachine(spec=VMSpec(name=f"vm-{index}")))
        migrations = MigrationPlanner().plan(
            [donor, receiver], {"Kiev, Ukraine": 0.0, "Berlin, Germany": 0.09}
        )
        assert migrations == []


class TestEmulationOptions:
    def test_prediction_noise_option_runs(self, two_site_specs):
        config = EmulationConfig(
            num_vms=6, duration_hours=6, prediction_noise_std=0.2, seed=9,
            initial_datacenter="Andersen, Guam",
        )
        cloud = EmulatedCloud(two_site_specs, config)
        summary = cloud.run()
        assert summary.total_hours == 6
        assert sum(dc.num_vms for dc in cloud.datacenters) == 6

    def test_single_datacenter_emulation_never_migrates(self, anchor_profiles):
        spec = DatacenterSpec(
            name="Harare, Zimbabwe",
            profile=anchor_profiles["Harare, Zimbabwe"],
            it_capacity_kw=FLEET_KW * 2,
            solar_kw=FLEET_KW * 5,
        )
        cloud = EmulatedCloud([spec], EmulationConfig(num_vms=4, duration_hours=6))
        summary = cloud.run()
        assert summary.total_migrations == 0

    def test_replication_factor_clamped_to_sites(self, two_site_specs):
        config = EmulationConfig(num_vms=4, duration_hours=2, gdfs_replication_factor=5)
        cloud = EmulatedCloud(two_site_specs, config)
        assert cloud.gdfs.replication_factor == 2
