"""Tests for VMs, physical hosts and the OpenNebula-like within-DC manager."""

import pytest

from repro.greennebula import OpenNebulaManager, PhysicalHost, PlacementError, VirtualMachine, VMState
from repro.simulation import VMSpec


def make_vm(name="vm-1", memory_mb=512.0, power_w=30.0, cpus=1):
    return VirtualMachine(spec=VMSpec(name=name, memory_mb=memory_mb, power_w=power_w, virtual_cpus=cpus))


class TestVirtualMachine:
    def test_initial_state(self):
        vm = make_vm()
        assert vm.state is VMState.PENDING
        assert not vm.is_placed
        assert vm.power_kw == pytest.approx(0.03)

    def test_place_and_stop(self):
        vm = make_vm()
        vm.place("dc-a", "host-1")
        assert vm.state is VMState.RUNNING and vm.is_placed
        vm.stop()
        assert vm.power_kw == 0.0

    def test_dirty_data_accumulates_only_while_running(self):
        vm = make_vm()
        vm.accumulate_dirty_data(2.0)
        assert vm.dirty_data_mb == 0.0  # still pending
        vm.place("dc-a", "host-1")
        vm.accumulate_dirty_data(2.0)
        assert vm.dirty_data_mb == pytest.approx(220.0)
        with pytest.raises(ValueError):
            vm.accumulate_dirty_data(-1.0)

    def test_migration_state_includes_dirty_data(self):
        vm = make_vm()
        vm.place("dc-a", "host-1")
        vm.accumulate_dirty_data(1.0)
        assert vm.migration_state_mb == pytest.approx(512.0 + 110.0)
        assert vm.flush_dirty_data() == pytest.approx(110.0)
        assert vm.migration_state_mb == pytest.approx(512.0)

    def test_migration_lifecycle(self):
        vm = make_vm()
        vm.place("dc-a", "host-1")
        vm.start_migration()
        assert vm.state is VMState.MIGRATING
        vm.finish_migration("dc-b", "host-9")
        assert vm.state is VMState.RUNNING
        assert vm.datacenter == "dc-b"
        assert vm.total_migrations == 1

    def test_invalid_migration_transitions(self):
        vm = make_vm()
        with pytest.raises(ValueError):
            vm.start_migration()  # not running yet
        vm.place("dc-a", "host-1")
        with pytest.raises(ValueError):
            vm.finish_migration("dc-b", "host-2")  # not migrating


class TestPhysicalHost:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhysicalHost(name="bad", cpu_cores=0)
        with pytest.raises(ValueError):
            PhysicalHost(name="bad", memory_mb=0)

    def test_capacity_accounting(self):
        host = PhysicalHost(name="h", cpu_cores=4, memory_mb=2048.0)
        vm = make_vm()
        host.attach(vm)
        assert host.used_cores == 1
        assert host.free_memory_mb == pytest.approx(1536.0)

    def test_cannot_overfill(self):
        host = PhysicalHost(name="h", cpu_cores=1, memory_mb=600.0)
        host.attach(make_vm("a"))
        assert not host.can_host(make_vm("b"))
        with pytest.raises(ValueError):
            host.attach(make_vm("b"))

    def test_duplicate_attach_rejected(self):
        host = PhysicalHost(name="h")
        vm = make_vm()
        host.attach(vm)
        with pytest.raises(ValueError):
            host.attach(vm)

    def test_detach(self):
        host = PhysicalHost(name="h")
        vm = make_vm()
        host.attach(vm)
        assert host.detach(vm.name) is vm
        with pytest.raises(KeyError):
            host.detach(vm.name)

    def test_power_model(self):
        host = PhysicalHost(name="h", idle_power_kw=0.1)
        assert host.power_kw == pytest.approx(0.1)
        vm = make_vm()
        vm.place("dc", "h")
        host.attach(vm)
        assert host.power_kw == pytest.approx(0.13)


class TestOpenNebulaManager:
    @pytest.fixture()
    def manager(self):
        manager = OpenNebulaManager(datacenter_name="dc-a")
        for index in range(2):
            manager.add_host(PhysicalHost(name=f"host-{index}", cpu_cores=2, memory_mb=1536.0))
        return manager

    def test_first_fit_deployment(self, manager):
        first = manager.deploy(make_vm("vm-1"))
        second = manager.deploy(make_vm("vm-2"))
        third = manager.deploy(make_vm("vm-3"))
        assert first.name == "host-0" and second.name == "host-0"
        assert third.name == "host-1"
        assert manager.num_vms == 3

    def test_placement_error_when_full(self, manager):
        for index in range(4):
            manager.deploy(make_vm(f"vm-{index}"))
        with pytest.raises(PlacementError):
            manager.deploy(make_vm("vm-overflow"))

    def test_deploy_sets_vm_placement(self, manager):
        vm = make_vm("vm-1")
        manager.deploy(vm)
        assert vm.datacenter == "dc-a"
        assert vm.state is VMState.RUNNING

    def test_undeploy(self, manager):
        vm = make_vm("vm-1")
        manager.deploy(vm)
        returned = manager.undeploy("vm-1")
        assert returned is vm
        assert manager.num_vms == 0
        with pytest.raises(KeyError):
            manager.undeploy("vm-1")

    def test_find_and_list(self, manager):
        vm = make_vm("vm-1")
        manager.deploy(vm)
        assert manager.find_vm("vm-1") is vm
        assert manager.find_vm("ghost") is None
        assert manager.vm_names() == ["vm-1"]

    def test_power_accounting(self, manager):
        manager.deploy(make_vm("vm-1"))
        manager.deploy(make_vm("vm-2"))
        assert manager.vm_power_kw == pytest.approx(0.06)
        assert manager.it_power_kw > manager.vm_power_kw  # idle host power included

    def test_duplicate_host_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.add_host(PhysicalHost(name="host-0"))

    def test_free_capacity_and_can_accept(self, manager):
        assert manager.can_accept(make_vm("vm-x"))
        capacity = manager.free_capacity()
        assert capacity["cores"] == 4
        assert capacity["memory_mb"] == pytest.approx(3072.0)
