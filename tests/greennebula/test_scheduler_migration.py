"""Tests for the datacenter model, predictor, migration planner and scheduler."""

import numpy as np
import pytest

from repro.greennebula import (
    GreenDatacenter,
    GreenEnergyPredictor,
    GreenNebulaScheduler,
    MigrationPlanner,
    MigrationRequest,
    VirtualMachine,
    WANLink,
)
from repro.simulation import VMSpec


@pytest.fixture(scope="module")
def three_dcs(anchor_profiles):
    """Three emulation-scale datacenters mirroring Table III's locations."""
    fleet_kw = 9 * 0.03
    names = ["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"]
    dcs = []
    for name in names:
        dc = GreenDatacenter(
            name=name,
            profile=anchor_profiles[name],
            it_capacity_kw=fleet_kw * 1.5,
            solar_kw=fleet_kw * 7.0,
            wind_kw=0.0,
        )
        dc.provision_hosts(4)
        dcs.append(dc)
    return dcs


def deploy_vms(dc, count, prefix="vm"):
    vms = []
    for index in range(count):
        vm = VirtualMachine(spec=VMSpec(name=f"{prefix}-{index}"))
        dc.manager.deploy(vm)
        vms.append(vm)
    return vms


class TestGreenDatacenter:
    def test_validation(self, anchor_profiles):
        with pytest.raises(ValueError):
            GreenDatacenter(name="bad", profile=anchor_profiles["Nairobi, Kenya"], it_capacity_kw=0.0)
        with pytest.raises(ValueError):
            GreenDatacenter(
                name="bad", profile=anchor_profiles["Nairobi, Kenya"], it_capacity_kw=1.0, solar_kw=-1.0
            )

    def test_green_power_scales_with_installed_capacity(self, anchor_profiles):
        profile = anchor_profiles["Harare, Zimbabwe"]
        small = GreenDatacenter(name="s", profile=profile, it_capacity_kw=1.0, solar_kw=1.0)
        large = GreenDatacenter(name="l", profile=profile, it_capacity_kw=1.0, solar_kw=10.0)
        hours = np.arange(24.0)
        small_energy = sum(small.green_power_kw(h) for h in hours)
        large_energy = sum(large.green_power_kw(h) for h in hours)
        assert large_energy == pytest.approx(10.0 * small_energy, rel=1e-9)
        assert large_energy > 0

    def test_epoch_index_wraps(self, anchor_profiles):
        profile = anchor_profiles["Nairobi, Kenya"]
        dc = GreenDatacenter(name="n", profile=profile, it_capacity_kw=1.0)
        total_hours = profile.epochs.num_epochs * profile.epochs.hours_per_epoch
        assert dc.epoch_index(0.0) == dc.epoch_index(float(total_hours))

    def test_forecast_length_and_positivity(self, three_dcs):
        forecast = three_dcs[0].green_power_forecast_kw(0.0, 48)
        assert forecast.shape == (48,)
        assert np.all(forecast >= 0.0)
        with pytest.raises(ValueError):
            three_dcs[0].green_power_forecast_kw(0.0, 0)

    def test_power_accounting(self, anchor_profiles):
        dc = GreenDatacenter(
            name="x", profile=anchor_profiles["Nairobi, Kenya"], it_capacity_kw=1.0
        )
        dc.provision_hosts(2)
        deploy_vms(dc, 3)
        assert dc.vm_power_kw == pytest.approx(0.09)
        assert dc.headroom_kw == pytest.approx(1.0 - 0.09)
        assert dc.facility_power_kw(0.0) >= dc.it_power_kw
        assert dc.brown_power_kw(0.0) >= 0.0


class TestGreenEnergyPredictor:
    def test_perfect_prediction_matches_actual(self, three_dcs):
        predictor = GreenEnergyPredictor(horizon_hours=24, noise_std=0.0)
        predicted = predictor.predict(three_dcs[0], 0.0)
        actual = three_dcs[0].green_power_forecast_kw(0.0, 24)
        np.testing.assert_allclose(predicted, actual)

    def test_noisy_prediction_stays_nonnegative(self, three_dcs):
        predictor = GreenEnergyPredictor(horizon_hours=24, noise_std=0.5, seed=1)
        predicted = predictor.predict(three_dcs[0], 12.0)
        assert np.all(predicted >= 0.0)

    def test_predict_all_keys(self, three_dcs):
        predictor = GreenEnergyPredictor(horizon_hours=12)
        predictions = predictor.predict_all(three_dcs, 0.0)
        assert set(predictions) == {dc.name for dc in three_dcs}

    def test_validation(self):
        with pytest.raises(ValueError):
            GreenEnergyPredictor(horizon_hours=0)
        with pytest.raises(ValueError):
            GreenEnergyPredictor(noise_std=-0.1)

    def test_noise_independent_of_call_order(self, three_dcs):
        """Predictions are a pure function of (seed, datacenter, hour).

        The stateful-RNG predictor gave different noise depending on how many
        forecasts were issued before; the rebased one must not, so emulation
        runs reproduce across processes and scheduler cadences.
        """
        direct = GreenEnergyPredictor(horizon_hours=24, noise_std=0.4, seed=3)
        prediction = direct.predict(three_dcs[0], 12.0)
        warmed = GreenEnergyPredictor(horizon_hours=24, noise_std=0.4, seed=3)
        for hour in (0.0, 5.0, 48.0):  # unrelated earlier forecasts
            warmed.predict_all(three_dcs, hour)
        np.testing.assert_array_equal(warmed.predict(three_dcs[0], 12.0), prediction)

    def test_overlapping_windows_share_noise(self, three_dcs):
        """Re-forecasting an hour yields the same noisy value it had before."""
        predictor = GreenEnergyPredictor(horizon_hours=24, noise_std=0.4, seed=3)
        first = predictor.predict(three_dcs[0], 0.0)
        shifted = predictor.predict(three_dcs[0], 6.0)
        np.testing.assert_array_equal(shifted[:18], first[6:])

    def test_forecast_error_knob_aliases_noise(self, three_dcs):
        via_error = GreenEnergyPredictor(horizon_hours=12, forecast_error=0.3, seed=1)
        via_std = GreenEnergyPredictor(horizon_hours=12, noise_std=0.3, seed=1)
        np.testing.assert_array_equal(
            via_error.predict(three_dcs[0], 3.0), via_std.predict(three_dcs[0], 3.0)
        )


class TestWANLinkAndRequests:
    def test_link_validation(self):
        with pytest.raises(ValueError):
            WANLink("a", "a")
        with pytest.raises(ValueError):
            WANLink("a", "b", bandwidth_mb_per_hour=0.0)

    def test_paper_migration_fits_in_an_hour(self):
        """Section V-B: ~750 MB of memory + dirty disk moves in under one hour."""
        link = WANLink("barcelona", "piscataway")
        assert link.transfer_hours(750.0) <= 1.0

    def test_transfer_time_negative_rejected(self):
        link = WANLink("a", "b")
        with pytest.raises(ValueError):
            link.transfer_hours(-1.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MigrationRequest("vm", "a", "a", 10.0, 0.03)
        with pytest.raises(ValueError):
            MigrationRequest("vm", "a", "b", -1.0, 0.03)


class TestMigrationPlanner:
    def test_plan_moves_power_from_donor_to_receiver(self, three_dcs):
        donor, receiver, third = three_dcs
        vms = deploy_vms(donor, 6, prefix="plan")
        try:
            targets = {
                donor.name: donor.vm_power_kw - 3 * 0.03,
                receiver.name: receiver.vm_power_kw + 3 * 0.03,
                third.name: third.vm_power_kw,
            }
            planner = MigrationPlanner()
            migrations = planner.plan(three_dcs, targets)
            assert len(migrations) == 3
            assert all(m.source == donor.name and m.destination == receiver.name for m in migrations)
            assert MigrationPlanner.migrated_power_kw(migrations) == pytest.approx(0.09)
        finally:
            for vm in vms:
                donor.manager.undeploy(vm.name)

    def test_smallest_footprint_vms_move_first(self, three_dcs):
        donor, receiver, third = three_dcs
        small = VirtualMachine(spec=VMSpec(name="small", memory_mb=256.0))
        big = VirtualMachine(spec=VMSpec(name="big", memory_mb=2048.0))
        donor.manager.deploy(big)
        donor.manager.deploy(small)
        try:
            targets = {donor.name: donor.vm_power_kw - 0.03, receiver.name: receiver.vm_power_kw + 0.03}
            migrations = MigrationPlanner().plan(three_dcs, targets)
            assert migrations[0].vm_name == "small"
        finally:
            donor.manager.undeploy("small")
            donor.manager.undeploy("big")

    def test_unknown_target_rejected(self, three_dcs):
        with pytest.raises(KeyError):
            MigrationPlanner().plan(three_dcs, {"nowhere": 1.0})

    def test_no_migration_when_targets_match_current(self, three_dcs):
        targets = {dc.name: dc.vm_power_kw for dc in three_dcs}
        assert MigrationPlanner().plan(three_dcs, targets) == []

    def test_default_link_created_on_demand(self):
        planner = MigrationPlanner(default_bandwidth_mb_per_hour=1000.0)
        link = planner.link("a", "b")
        assert link.bandwidth_mb_per_hour == 1000.0
        assert planner.link("a", "b") is link

    def test_explicit_link_is_bidirectional(self):
        planner = MigrationPlanner(links=[WANLink("a", "b", bandwidth_mb_per_hour=100.0)])
        assert planner.link("b", "a").bandwidth_mb_per_hour == 100.0


class TestGreenNebulaScheduler:
    def test_schedule_returns_targets_for_all_datacenters(self, three_dcs):
        donor = three_dcs[2]
        vms = deploy_vms(donor, 9, prefix="sched")
        try:
            scheduler = GreenNebulaScheduler(three_dcs, horizon_hours=24)
            decision = scheduler.schedule(hour_of_year=0.0)
            assert set(decision.target_power_kw) == {dc.name for dc in three_dcs}
            total_target = sum(decision.target_power_kw.values())
            assert total_target >= donor.vm_power_kw - 1e-6
            assert decision.solve_time_seconds > 0.0
            assert decision.predicted_brown_kwh >= 0.0
        finally:
            for vm in vms:
                donor.manager.undeploy(vm.name)

    def test_scheduler_moves_load_toward_green(self, three_dcs):
        """With abundant solar at one site and none at another, load follows the sun."""
        fleet_kw = 9 * 0.03
        sunny, dark = three_dcs[0], three_dcs[2]
        # Temporarily strip the dark site of its solar plant.
        original_solar = dark.solar_kw
        dark.solar_kw = 0.0
        vms = deploy_vms(dark, 9, prefix="follow")
        try:
            scheduler = GreenNebulaScheduler(three_dcs, horizon_hours=24)
            noon = 12.0  # UTC noon: the Americas site has daylight within the window
            decision = scheduler.schedule(hour_of_year=noon)
            assert decision.target_power_kw[dark.name] < fleet_kw - 1e-6
            assert decision.migrations
        finally:
            dark.solar_kw = original_solar
            for vm in vms:
                dark.manager.undeploy(vm.name)

    def test_solve_time_well_under_a_second(self, three_dcs):
        """Section V-C reports sub-second scheduling; our LP should match."""
        scheduler = GreenNebulaScheduler(three_dcs, horizon_hours=48)
        decision = scheduler.schedule(hour_of_year=0.0)
        assert decision.solve_time_seconds < 2.0

    def test_validation(self, three_dcs):
        with pytest.raises(ValueError):
            GreenNebulaScheduler([], horizon_hours=24)
        with pytest.raises(ValueError):
            GreenNebulaScheduler(three_dcs, horizon_hours=0)

    def test_build_model_checks_forecast_length(self, three_dcs):
        scheduler = GreenNebulaScheduler(three_dcs, horizon_hours=24)
        bad_forecasts = {dc.name: np.zeros(4) for dc in three_dcs}
        with pytest.raises(ValueError):
            scheduler.build_model(0.0, 0.27, {dc.name: 0.0 for dc in three_dcs}, bad_forecasts)
