"""Tests for GDFS, GreenNebula's multi-datacenter file system."""

import pytest

from repro.greennebula import GDFS


DCS = ["dc-a", "dc-b", "dc-c"]


@pytest.fixture()
def gdfs():
    return GDFS(DCS, replication_factor=2, block_size_mb=64.0)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GDFS([])
        with pytest.raises(ValueError):
            GDFS(["a", "a"])
        with pytest.raises(ValueError):
            GDFS(["a"], replication_factor=0)
        with pytest.raises(ValueError):
            GDFS(["a"], replication_factor=2)
        with pytest.raises(ValueError):
            GDFS(["a"], block_size_mb=0.0)


class TestNamespace:
    def test_create_file_replicates_blocks(self, gdfs):
        metadata = gdfs.create_file("vm.img", 5 * 1024.0, "dc-a")
        assert metadata.num_blocks == 80
        for replicas in metadata.replicas.values():
            assert len(replicas) == 2
            assert "dc-a" in replicas
            assert all(replica.valid for replica in replicas.values())

    def test_duplicate_file_rejected(self, gdfs):
        gdfs.create_file("x", 10.0, "dc-a")
        with pytest.raises(ValueError):
            gdfs.create_file("x", 10.0, "dc-b")

    def test_empty_file(self, gdfs):
        metadata = gdfs.create_file("empty", 0.0, "dc-a")
        assert metadata.num_blocks == 0

    def test_unknown_datacenter_rejected(self, gdfs):
        with pytest.raises(KeyError):
            gdfs.create_file("x", 10.0, "dc-z")

    def test_delete_file(self, gdfs):
        gdfs.create_file("x", 10.0, "dc-a")
        gdfs.delete_file("x")
        with pytest.raises(KeyError):
            gdfs.file("x")


class TestReadsAndWrites:
    def test_local_read_is_free(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        assert gdfs.read("f", 0, "dc-a") == 0.0

    def test_remote_read_fetches_block(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        # dc-c holds no replica (replication factor 2 places on dc-a and dc-b).
        traffic = gdfs.read("f", 0, "dc-c")
        assert traffic == 64.0
        # The fetched copy is now cached locally: a second read is free.
        assert gdfs.read("f", 0, "dc-c") == 0.0
        assert gdfs.transfers.fetch_mb == 64.0

    def test_write_invalidates_remote_replicas(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        gdfs.write("f", 0, "dc-a")
        replicas = gdfs.file("f").replicas[0]
        assert replicas["dc-a"].valid and replicas["dc-a"].dirty
        assert not replicas["dc-b"].valid

    def test_partial_write_without_local_replica_fetches_first(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        traffic = gdfs.write("f", 0, "dc-c", partial=True)
        assert traffic == 64.0
        replicas = gdfs.file("f").replicas[0]
        assert replicas["dc-c"].valid and replicas["dc-c"].dirty

    def test_full_write_without_local_replica_is_free(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        traffic = gdfs.write("f", 0, "dc-c", partial=False)
        assert traffic == 0.0

    def test_read_of_unknown_block_rejected(self, gdfs):
        gdfs.create_file("f", 64.0, "dc-a")
        with pytest.raises(KeyError):
            gdfs.read("f", 5, "dc-a")

    def test_writes_always_leave_a_valid_replica(self, gdfs):
        gdfs.create_file("f", 192.0, "dc-a")
        for block in range(3):
            gdfs.write("f", block, "dc-b")
        assert gdfs.check_invariants() == []


class TestReplicationAndMigration:
    def test_dirty_blocks_tracked(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        gdfs.write("f", 0, "dc-a")
        assert ("f", 0) in gdfs.dirty_blocks("dc-a")
        assert gdfs.dirty_blocks("dc-b") == []

    def test_background_replication_clears_dirty_blocks(self, gdfs):
        gdfs.create_file("f", 128.0, "dc-a")
        gdfs.write("f", 0, "dc-a")
        gdfs.write("f", 1, "dc-a")
        traffic = gdfs.replicate_step(max_blocks=10)
        assert traffic > 0
        assert gdfs.dirty_blocks() == []
        assert gdfs.check_invariants() == []

    def test_replicate_step_respects_budget(self, gdfs):
        gdfs.create_file("f", 640.0, "dc-a")
        for block in range(10):
            gdfs.write("f", block, "dc-a")
        gdfs.replicate_step(max_blocks=3)
        assert len(gdfs.dirty_blocks()) == 7
        with pytest.raises(ValueError):
            gdfs.replicate_step(max_blocks=0)

    def test_unreplicated_data_for_migration(self, gdfs):
        gdfs.create_file("vm.img", 256.0, "dc-a")
        gdfs.write("vm.img", 0, "dc-a")
        gdfs.write("vm.img", 1, "dc-a")
        assert gdfs.unreplicated_data_mb("vm.img", "dc-a") == 128.0
        assert gdfs.unreplicated_data_mb("vm.img", "dc-b") == 0.0

    def test_migration_moves_only_dirty_blocks(self, gdfs):
        gdfs.create_file("vm.img", 256.0, "dc-a")
        gdfs.write("vm.img", 0, "dc-a")
        traffic = gdfs.transfer_for_migration("vm.img", "dc-a", "dc-b")
        assert traffic == 64.0
        assert gdfs.unreplicated_data_mb("vm.img", "dc-a") == 0.0
        replicas = gdfs.file("vm.img").replicas[0]
        assert replicas["dc-b"].valid

    def test_migration_after_replication_moves_nothing(self, gdfs):
        """The design goal: re-replicated blocks do not travel with the VM."""
        gdfs.create_file("vm.img", 256.0, "dc-a")
        gdfs.write("vm.img", 0, "dc-a")
        gdfs.replicate_step(max_blocks=10)
        assert gdfs.transfer_for_migration("vm.img", "dc-a", "dc-b") == 0.0

    def test_invariants_detect_problems(self, gdfs):
        gdfs.create_file("f", 64.0, "dc-a")
        for replica in gdfs.file("f").replicas[0].values():
            replica.valid = False
        assert gdfs.check_invariants()
