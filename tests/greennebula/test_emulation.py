"""Tests for the GreenNebula emulation harness (Section V-B/C)."""

import numpy as np
import pytest

from repro.greennebula import EmulatedCloud, EmulationConfig
from repro.greennebula.emulation import DatacenterSpec


FLEET_KW = 9 * 0.03


@pytest.fixture(scope="module")
def table3_specs(anchor_profiles):
    """Three solar-heavy datacenters shaped like Table III, scaled to the fleet."""
    names = ["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"]
    return [
        DatacenterSpec(
            name=name,
            profile=anchor_profiles[name],
            it_capacity_kw=FLEET_KW * 1.2,
            solar_kw=FLEET_KW * 7.0,
            wind_kw=FLEET_KW * 0.4,
        )
        for name in names
    ]


@pytest.fixture(scope="module")
def emulation_run(table3_specs):
    config = EmulationConfig(
        num_vms=9, duration_hours=24, initial_datacenter="Harare, Zimbabwe", seed=3
    )
    cloud = EmulatedCloud(table3_specs, config)
    summary = cloud.run()
    return cloud, summary


class TestConfiguration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EmulationConfig(num_vms=0)
        with pytest.raises(ValueError):
            EmulationConfig(duration_hours=0)
        with pytest.raises(ValueError):
            EmulationConfig(wan_bandwidth_mb_per_hour=0.0)

    def test_requires_datacenters(self):
        with pytest.raises(ValueError):
            EmulatedCloud([], EmulationConfig())

    def test_unknown_initial_datacenter(self, table3_specs):
        with pytest.raises(KeyError):
            EmulatedCloud(table3_specs, EmulationConfig(initial_datacenter="nowhere"))


class TestWorkloadDeployment:
    def test_all_vms_start_at_initial_datacenter(self, table3_specs):
        cloud = EmulatedCloud(
            table3_specs, EmulationConfig(num_vms=9, initial_datacenter="Harare, Zimbabwe")
        )
        assert cloud.datacenter("Harare, Zimbabwe").num_vms == 9
        assert cloud.datacenter("Mexico City, Mexico").num_vms == 0

    def test_each_vm_has_a_gdfs_file(self, table3_specs):
        cloud = EmulatedCloud(table3_specs, EmulationConfig(num_vms=5))
        assert len(cloud.gdfs.files) == 5
        for vm in cloud.vms.values():
            assert vm.gdfs_file in cloud.gdfs.files


class TestEmulationRun:
    def test_summary_quantities(self, emulation_run):
        _, summary = emulation_run
        assert summary.total_hours == 24
        assert summary.total_migrations >= 1
        assert summary.total_green_used_kwh > 0
        assert 0.0 <= summary.green_fraction <= 1.0
        assert summary.mean_schedule_time_s > 0

    def test_no_vm_lost_during_the_day(self, emulation_run):
        cloud, _ = emulation_run
        assert sum(dc.num_vms for dc in cloud.datacenters) == 9

    def test_load_follows_the_renewables(self, emulation_run):
        """Load must not stay pinned at the starting site for the whole day."""
        cloud, _ = emulation_run
        start_series = np.array(cloud.load_series("Harare, Zimbabwe"))
        others = [
            np.array(cloud.load_series(name))
            for name in ("Mexico City, Mexico", "Andersen, Guam")
        ]
        assert start_series.min() < start_series.max()  # load left the starting site
        assert max(series.max() for series in others) > 0.0  # and showed up elsewhere

    def test_trace_contains_all_kinds(self, emulation_run):
        cloud, _ = emulation_run
        kinds = cloud.trace.kinds()
        assert "datacenter" in kinds and "schedule" in kinds
        per_dc = cloud.trace.of_kind("datacenter")
        assert len(per_dc) == 24 * 3

    def test_trace_energy_balance(self, emulation_run):
        cloud, _ = emulation_run
        for record in cloud.trace.of_kind("datacenter"):
            supplied = record["brown_kw"] + min(record["green_available_kw"], record["facility_kw"])
            assert supplied >= record["facility_kw"] - 1e-6
            assert record["pue"] >= 1.0

    def test_gdfs_invariants_hold_after_run(self, emulation_run):
        cloud, _ = emulation_run
        assert cloud.gdfs.check_invariants() == []

    def test_migrated_state_bounded_by_paper_budget(self, emulation_run):
        """Each migration moves memory + unreplicated disk state (~hundreds of MB)."""
        cloud, _ = emulation_run
        for record in cloud.trace.of_kind("migration"):
            assert record["state_mb"] >= 512.0
            assert record["state_mb"] <= 512.0 + 5 * 1024.0

    def test_scheduling_runs_every_hour(self, emulation_run):
        cloud, _ = emulation_run
        assert len(cloud.decisions) == 24


class TestFromNetworkPlan:
    def test_scaling_preserves_ratios(self, case_study_plan):
        config = EmulationConfig(num_vms=9, duration_hours=2)
        cloud = EmulatedCloud.from_network_plan(case_study_plan, config)
        assert len(cloud.datacenters) == case_study_plan.num_datacenters
        plan_by_name = {dc.name: dc for dc in case_study_plan.datacenters}
        for dc in cloud.datacenters:
            plan_dc = plan_by_name[dc.name]
            if plan_dc.wind_kw > 0:
                scale = dc.wind_kw / plan_dc.wind_kw
                assert scale < 1e-3  # dramatically scaled down
        summary = cloud.run()
        assert summary.total_hours == 2
