"""Tests for the discrete-event engine, trace recorder and workload generator."""

import pytest

from repro.simulation import (
    Event,
    HPCWorkloadGenerator,
    PeriodicHandle,
    SimulationEngine,
    SimulationError,
    TraceRecorder,
    VMSpec,
)


class TestSimulationEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.0, lambda e: fired.append("late"))
        engine.schedule_at(1.0, lambda e: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_ties_broken_by_priority_then_insertion(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda e: fired.append("second"), priority=1)
        engine.schedule_at(1.0, lambda e: fired.append("first"), priority=0)
        engine.schedule_at(1.0, lambda e: fired.append("third"), priority=1)
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule_after(5.0, lambda e: None)
        engine.run()
        assert engine.now == pytest.approx(5.0)

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda e: None)
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda e: None)

    def test_run_until_stops_at_boundary(self):
        engine = SimulationEngine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda e, t=t: fired.append(t))
        processed = engine.run_until(2.0)
        assert processed == 2
        assert fired == [1.0, 2.0]
        assert engine.now == pytest.approx(2.0)
        assert engine.pending_events == 1

    def test_run_until_backwards_rejected(self):
        engine = SimulationEngine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_cancelled_events_skipped(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append("no"))
        event.cancel()
        engine.schedule_at(2.0, lambda e: fired.append("yes"))
        engine.run()
        assert fired == ["yes"]

    def test_periodic_scheduling(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_every(1.0, lambda e: ticks.append(e.now), start_offset=1.0)
        engine.run_until(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_requires_positive_interval(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_every(0.0, lambda e: None)

    def test_schedule_every_returns_cancellable_handle(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_every(1.0, lambda e: ticks.append(e.now), start_offset=1.0)
        assert isinstance(handle, PeriodicHandle)
        assert not handle.cancelled
        engine.run_until(3.0)
        handle.cancel()
        assert handle.cancelled
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]
        # Nothing is left behind: the pending occurrence was cancelled too.
        assert engine.pending_events == 0

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        handle = engine.schedule_every(1.0, lambda e: None, start_offset=1.0)
        handle.cancel()
        handle.cancel()
        assert engine.run_until(5.0) == 0

    def test_cancel_from_within_the_action_stops_the_series(self):
        engine = SimulationEngine()
        ticks = []
        handle = None

        def action(e):
            ticks.append(e.now)
            if len(ticks) == 2:
                handle.cancel()

        handle = engine.schedule_every(1.0, action, start_offset=1.0)
        engine.run()
        assert ticks == [1.0, 2.0]

    def test_two_periodic_series_cancel_independently(self):
        engine = SimulationEngine()
        fast, slow = [], []
        fast_handle = engine.schedule_every(1.0, lambda e: fast.append(e.now), start_offset=1.0)
        engine.schedule_every(2.0, lambda e: slow.append(e.now), start_offset=2.0)
        engine.run_until(2.0)
        fast_handle.cancel()
        engine.run_until(6.0)
        assert fast == [1.0, 2.0]
        assert slow == [2.0, 4.0, 6.0]

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(e):
            fired.append(e.now)
            if e.now < 3.0:
                e.schedule_after(1.0, chain)

        engine.schedule_at(1.0, chain)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_processed_counter(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda e: None)
        engine.run()
        assert engine.processed_events == 5

    def test_event_payload_and_fire(self):
        collected = {}
        event = Event(time=1.0, name="probe", payload={"key": "value"},
                      action=lambda e: collected.update(e="done"))
        event.fire(None)
        assert collected == {"e": "done"}


class TestTraceRecorder:
    def test_record_and_filter_by_kind(self):
        trace = TraceRecorder()
        trace.record(0.0, "load", datacenter="a", value=1.0)
        trace.record(1.0, "load", datacenter="b", value=2.0)
        trace.record(1.0, "migration", vm="x")
        assert len(trace) == 3
        assert len(trace.of_kind("load")) == 2
        assert trace.kinds() == ["load", "migration"]

    def test_series_extraction(self):
        trace = TraceRecorder()
        for hour, value in enumerate([1.0, 2.0, 3.0]):
            trace.record(float(hour), "load", value=value)
        assert trace.series("load", "value") == [1.0, 2.0, 3.0]

    def test_between_window(self):
        trace = TraceRecorder()
        for hour in range(5):
            trace.record(float(hour), "tick")
        assert len(trace.between(1.0, 3.0)) == 2
        with pytest.raises(ValueError):
            trace.between(3.0, 1.0)

    def test_filter_predicate_and_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "a", value=1)
        trace.record(0.0, "b", value=2)
        assert len(trace.filter(lambda r: r["value"] > 1)) == 1
        trace.clear()
        assert len(trace) == 0


class TestWorkloadGenerator:
    def test_paper_vm_defaults(self):
        spec = VMSpec(name="vm")
        assert spec.memory_mb == 512.0
        assert spec.disk_gb == 5.0
        assert spec.power_w == 30.0
        assert spec.dirty_data_mb_per_hour == 110.0
        assert spec.power_kw == pytest.approx(0.03)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            VMSpec(name="bad", virtual_cpus=0)
        with pytest.raises(ValueError):
            VMSpec(name="bad", memory_mb=-1.0)
        with pytest.raises(ValueError):
            VMSpec(name="bad", runtime_hours=0.0)

    def test_homogeneous_fleet(self):
        generator = HPCWorkloadGenerator()
        fleet = generator.homogeneous_fleet(9)
        assert len(fleet) == 9
        assert len({spec.name for spec in fleet}) == 9
        assert all(spec.memory_mb == 512.0 for spec in fleet)

    def test_heterogeneous_fleet_varies(self):
        generator = HPCWorkloadGenerator(seed=1)
        fleet = generator.heterogeneous_fleet(20)
        memories = {spec.memory_mb for spec in fleet}
        assert len(memories) > 5

    def test_heterogeneous_range_validation(self):
        generator = HPCWorkloadGenerator()
        with pytest.raises(ValueError):
            generator.heterogeneous_fleet(3, memory_range_mb=(100.0, 50.0))

    def test_fleet_for_power(self):
        generator = HPCWorkloadGenerator()
        fleet = generator.fleet_for_power(0.27)
        assert len(fleet) == 9

    def test_negative_counts_rejected(self):
        generator = HPCWorkloadGenerator()
        with pytest.raises(ValueError):
            generator.homogeneous_fleet(-1)
        with pytest.raises(ValueError):
            generator.fleet_for_power(-1.0)

    def test_deterministic_with_seed(self):
        a = HPCWorkloadGenerator(seed=5).heterogeneous_fleet(5)
        b = HPCWorkloadGenerator(seed=5).heterogeneous_fleet(5)
        assert [s.memory_mb for s in a] == [s.memory_mb for s in b]
