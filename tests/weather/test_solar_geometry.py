"""Tests for the solar-geometry approximations."""

import numpy as np
import pytest

from repro.weather import clear_sky_irradiance, solar_declination_deg, solar_elevation_deg
from repro.weather.solar_geometry import daylight_hours


class TestDeclination:
    def test_bounds(self):
        days = np.arange(365)
        declination = solar_declination_deg(days)
        assert np.all(declination <= 23.45 + 1e-9)
        assert np.all(declination >= -23.45 - 1e-9)

    def test_solstices(self):
        # Around June 21st (day ~171) the declination is near +23.45.
        assert solar_declination_deg(171.0) == pytest.approx(23.45, abs=0.5)
        # Around December 21st (day ~354) it is near -23.45.
        assert solar_declination_deg(354.0) == pytest.approx(-23.45, abs=0.5)

    def test_equinox_near_zero(self):
        assert abs(solar_declination_deg(79.0)) < 2.0  # around March 21st

    def test_scalar_return(self):
        assert isinstance(solar_declination_deg(10.0), float)


class TestElevation:
    def test_noon_higher_than_morning(self):
        noon = solar_elevation_deg(40.0, 100, 12.0)
        morning = solar_elevation_deg(40.0, 100, 8.0)
        assert noon > morning

    def test_midnight_below_horizon_mid_latitudes(self):
        assert solar_elevation_deg(40.0, 100, 0.0) < 0.0

    def test_equator_equinox_noon_near_zenith(self):
        elevation = solar_elevation_deg(0.0, 79, 12.0)
        assert elevation == pytest.approx(90.0, abs=3.0)

    def test_polar_night(self):
        # Above the Arctic circle in mid-winter the sun never rises.
        elevations = solar_elevation_deg(75.0, 355, np.arange(24))
        assert np.all(elevations < 0.0)

    def test_vector_shape(self):
        hours = np.arange(24)
        elevations = solar_elevation_deg(45.0, 180, hours)
        assert elevations.shape == (24,)


class TestClearSkyIrradiance:
    def test_zero_at_night(self):
        assert clear_sky_irradiance(40.0, 180, 0.0) == 0.0

    def test_positive_at_noon(self):
        ghi = clear_sky_irradiance(40.0, 180, 12.0)
        assert 600.0 < ghi < 1100.0

    def test_never_exceeds_solar_constant(self):
        hours = np.arange(24)
        for day in (0, 90, 180, 270):
            ghi = clear_sky_irradiance(0.0, day, hours)
            assert np.all(ghi <= 1361.0)
            assert np.all(ghi >= 0.0)

    def test_bad_turbidity_rejected(self):
        with pytest.raises(ValueError):
            clear_sky_irradiance(0.0, 0, 12.0, turbidity=0.0)

    def test_higher_latitude_less_winter_sun(self):
        tropics = clear_sky_irradiance(10.0, 0, 12.0)
        high = clear_sky_irradiance(60.0, 0, 12.0)
        assert tropics > high


class TestDaylightHours:
    def test_equator_always_about_12(self):
        for day in (0, 90, 180, 270):
            assert daylight_hours(0.0, day) == pytest.approx(12.0, abs=0.5)

    def test_summer_longer_than_winter(self):
        assert daylight_hours(50.0, 172) > daylight_hours(50.0, 355)

    def test_polar_extremes(self):
        assert daylight_hours(80.0, 172) == pytest.approx(24.0, abs=0.1)
        assert daylight_hours(80.0, 355) == pytest.approx(0.0, abs=0.1)
