"""Tests for the synthetic TMY generator."""

import numpy as np
import pytest

from repro.weather import ClimateProfile, TMYGenerator
from repro.weather.records import HOURS_PER_YEAR, TMYDataset


@pytest.fixture(scope="module")
def generator():
    return TMYGenerator(seed=42)


@pytest.fixture(scope="module")
def temperate(generator):
    return generator.generate("temperate", 45.0, ClimateProfile())


class TestClimateProfile:
    def test_invalid_cloudiness(self):
        with pytest.raises(ValueError):
            ClimateProfile(cloudiness=1.5)

    def test_negative_wind_rejected(self):
        with pytest.raises(ValueError):
            ClimateProfile(mean_wind_speed_m_s=-1.0)

    def test_invalid_wind_seasonality(self):
        with pytest.raises(ValueError):
            ClimateProfile(wind_seasonality=2.0)


class TestTMYGeneration:
    def test_shape_and_type(self, temperate):
        assert isinstance(temperate, TMYDataset)
        assert temperate.temperature_c.shape == (HOURS_PER_YEAR,)
        assert temperate.ghi_w_m2.shape == (HOURS_PER_YEAR,)

    def test_determinism(self, generator):
        a = generator.generate("repeat", 30.0, ClimateProfile())
        b = generator.generate("repeat", 30.0, ClimateProfile())
        np.testing.assert_array_equal(a.temperature_c, b.temperature_c)
        np.testing.assert_array_equal(a.wind_speed_m_s, b.wind_speed_m_s)

    def test_different_locations_differ(self, generator):
        a = generator.generate("first", 30.0, ClimateProfile())
        b = generator.generate("second", 30.0, ClimateProfile())
        assert not np.array_equal(a.ghi_w_m2, b.ghi_w_m2)

    def test_mean_temperature_close_to_profile(self, generator):
        climate = ClimateProfile(mean_temperature_c=20.0)
        tmy = generator.generate("temp-check", 10.0, climate)
        assert np.mean(tmy.temperature_c) == pytest.approx(20.0, abs=1.5)

    def test_irradiance_nonnegative_and_zero_at_night(self, temperate):
        assert np.all(temperate.ghi_w_m2 >= 0.0)
        # Local midnight (hour 0 of each day) should have no sun at 45 deg latitude.
        midnights = temperate.ghi_w_m2[::24]
        assert np.all(midnights == 0.0)

    def test_summer_sunnier_than_winter_northern_hemisphere(self, temperate):
        daily = temperate.ghi_w_m2.reshape(365, 24).sum(axis=1)
        july = daily[182:212].mean()
        january = daily[0:30].mean()
        assert july > january

    def test_wind_mean_tracks_profile(self, generator):
        low = generator.generate("low-wind", 40.0, ClimateProfile(mean_wind_speed_m_s=3.0))
        high = generator.generate("high-wind", 40.0, ClimateProfile(mean_wind_speed_m_s=9.0))
        assert np.mean(high.wind_speed_m_s) > np.mean(low.wind_speed_m_s)

    def test_pressure_decreases_with_altitude(self, generator):
        sea = generator.generate("sea", 0.0, ClimateProfile(altitude_m=0.0))
        mountain = generator.generate("mountain", 0.0, ClimateProfile(altitude_m=2500.0))
        assert np.mean(mountain.pressure_kpa) < np.mean(sea.pressure_kpa)

    def test_cloudier_sites_produce_less_irradiance(self, generator):
        clear = generator.generate("clear", 30.0, ClimateProfile(cloudiness=0.1))
        cloudy = generator.generate("cloudy", 30.0, ClimateProfile(cloudiness=0.8))
        assert clear.ghi_w_m2.mean() > cloudy.ghi_w_m2.mean()


class TestTMYDatasetValidation:
    def test_wrong_length_rejected(self):
        short = np.zeros(100)
        full = np.full(HOURS_PER_YEAR, 100.0)
        with pytest.raises(ValueError):
            TMYDataset(short, full, full, full)

    def test_negative_irradiance_rejected(self):
        full = np.full(HOURS_PER_YEAR, 10.0)
        bad = np.full(HOURS_PER_YEAR, -1.0)
        with pytest.raises(ValueError):
            TMYDataset(full, bad, full, full)

    def test_nonpositive_pressure_rejected(self):
        full = np.full(HOURS_PER_YEAR, 10.0)
        zero = np.zeros(HOURS_PER_YEAR)
        with pytest.raises(ValueError):
            TMYDataset(full, full, full, zero)

    def test_day_and_hour_indices(self, temperate):
        assert temperate.hour_of_day()[25] == 1
        assert temperate.day_of_year()[25] == 1

    def test_select_days(self, temperate):
        subset = temperate.select_days([0, 10])
        assert subset["temperature_c"].shape == (48,)
        with pytest.raises(ValueError):
            temperate.select_days([400])

    def test_summary_keys(self, temperate):
        summary = temperate.summary()
        assert set(summary) == {
            "mean_temperature_c",
            "max_temperature_c",
            "mean_ghi_w_m2",
            "mean_wind_speed_m_s",
            "mean_pressure_kpa",
        }
