"""Tests for the world location catalogue."""

import pytest

from repro.weather import ANCHOR_LOCATIONS, Location, WorldCatalog, build_world_catalog
from repro.weather.locations import LocationOverrides
from repro.weather.synthesis import ClimateProfile
from repro.geo import GeoPoint


class TestLocationDataclass:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Location(name="", point=GeoPoint(0, 0), climate=ClimateProfile())

    def test_invalid_urbanisation(self):
        with pytest.raises(ValueError):
            Location(
                name="x", point=GeoPoint(0, 0), climate=ClimateProfile(), urbanisation=2.0
            )


class TestAnchorLocations:
    def test_paper_locations_present(self):
        names = {location.name for location in ANCHOR_LOCATIONS}
        for expected in (
            "Kiev, Ukraine",
            "Harare, Zimbabwe",
            "Nairobi, Kenya",
            "Mount Washington, NH, USA",
            "Burke Lakefront, OH, USA",
            "Mexico City, Mexico",
            "Andersen, Guam",
        ):
            assert expected in names

    def test_anchor_capacity_factors_match_table2(self):
        by_name = {location.name: location for location in ANCHOR_LOCATIONS}
        assert by_name["Harare, Zimbabwe"].overrides.solar_capacity_factor == pytest.approx(0.224)
        assert by_name["Nairobi, Kenya"].overrides.solar_capacity_factor == pytest.approx(0.209)
        assert by_name["Mount Washington, NH, USA"].overrides.wind_capacity_factor == pytest.approx(0.556)
        assert by_name["Burke Lakefront, OH, USA"].overrides.wind_capacity_factor == pytest.approx(0.209)

    def test_anchor_prices_match_table2(self):
        by_name = {location.name: location for location in ANCHOR_LOCATIONS}
        assert by_name["Mount Washington, NH, USA"].overrides.land_price_per_m2 == pytest.approx(947.0)
        assert by_name["Mount Washington, NH, USA"].overrides.energy_price_per_kwh == pytest.approx(0.126)
        assert by_name["Burke Lakefront, OH, USA"].overrides.distance_network_km == pytest.approx(3.0)

    def test_section2_capacity_factor_examples(self):
        by_name = {location.name: location for location in ANCHOR_LOCATIONS}
        assert by_name["Berlin, Germany"].overrides.solar_capacity_factor == pytest.approx(0.135)
        assert by_name["Phoenix, AZ, USA"].overrides.solar_capacity_factor == pytest.approx(0.229)
        assert by_name["New York, NY, USA"].overrides.wind_capacity_factor == pytest.approx(0.189)
        assert by_name["Canberra, Australia"].overrides.solar_capacity_factor == pytest.approx(0.202)


class TestBuildWorldCatalog:
    def test_default_count(self):
        catalog = build_world_catalog(num_locations=100, seed=1)
        assert len(catalog) == 100

    def test_full_paper_scale(self):
        catalog = build_world_catalog(num_locations=1373, seed=1)
        assert len(catalog) == 1373

    def test_names_unique(self):
        catalog = build_world_catalog(num_locations=200, seed=2)
        assert len(set(catalog.names)) == 200

    def test_deterministic(self):
        a = build_world_catalog(num_locations=50, seed=9)
        b = build_world_catalog(num_locations=50, seed=9)
        assert a.names == b.names

    def test_includes_anchors_by_default(self):
        catalog = build_world_catalog(num_locations=30, seed=1)
        assert "Kiev, Ukraine" in catalog.names

    def test_anchors_can_be_excluded(self):
        catalog = build_world_catalog(num_locations=30, seed=1, include_anchors=False)
        assert "Kiev, Ukraine" not in catalog.names

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_world_catalog(num_locations=0)

    def test_latitude_drives_temperature(self):
        catalog = build_world_catalog(num_locations=300, seed=5, include_anchors=False)
        tropical = [l for l in catalog if abs(l.point.latitude) < 15]
        polarish = [l for l in catalog if abs(l.point.latitude) > 45]
        assert tropical and polarish
        mean_tropical = sum(l.climate.mean_temperature_c for l in tropical) / len(tropical)
        mean_polar = sum(l.climate.mean_temperature_c for l in polarish) / len(polarish)
        assert mean_tropical > mean_polar


class TestWorldCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_world_catalog(num_locations=30, seed=3)

    def test_get_and_missing(self, catalog):
        assert catalog.get("Kiev, Ukraine").country == "Ukraine"
        with pytest.raises(KeyError):
            catalog.get("Atlantis")

    def test_subset(self, catalog):
        subset = catalog.subset(["Kiev, Ukraine", "Nairobi, Kenya"])
        assert len(subset) == 2
        assert set(subset.names) == {"Kiev, Ukraine", "Nairobi, Kenya"}

    def test_duplicate_names_rejected(self, catalog):
        location = catalog.get("Kiev, Ukraine")
        with pytest.raises(ValueError):
            WorldCatalog([location, location])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            WorldCatalog([])

    def test_tmy_cached(self, catalog):
        location = catalog.get("Nairobi, Kenya")
        assert catalog.tmy(location) is catalog.tmy(location)

    def test_overrides_used_for_anchor_prices(self, catalog):
        mount_washington = catalog.get("Mount Washington, NH, USA")
        assert catalog.land_price_per_m2(mount_washington) == pytest.approx(947.0)
        assert catalog.energy_price_per_kwh(mount_washington) == pytest.approx(0.126)
        assert catalog.distance_to_power_km(mount_washington) == pytest.approx(345.0)
        assert catalog.distance_to_network_km(mount_washington) == pytest.approx(71.0)
        assert catalog.near_plant_capacity_kw(mount_washington) == pytest.approx(1_500_000.0)

    def test_synthetic_locations_fall_back_to_models(self, catalog):
        synthetic = next(location for location in catalog if not location.is_anchor)
        assert catalog.land_price_per_m2(synthetic) > 0
        assert catalog.energy_price_per_kwh(synthetic) > 0
        assert catalog.distance_to_power_km(synthetic) >= 0
        assert catalog.near_plant_capacity_kw(synthetic) >= 100_000

    def test_overrides_dataclass_defaults(self):
        overrides = LocationOverrides()
        assert overrides.solar_capacity_factor is None
        assert overrides.near_plant_capacity_kw is None
