"""Differential tests pinning the vectorized provisioning fast path.

Three independent model-construction routes must produce the same LP:

* the **scalar** builder (readable per-epoch object-API loops, the reference
  implementation of the Fig. 1 constraints),
* the **vectorized** builder's Model route (blocked COO triplets), and
* the **templated row-form** route (cached CSC pattern, values only).

The tests compare canonicalized constraint matrices entry-for-entry and the
optimal objectives of representative provisioning problems, plus the
behavioural guarantees the heuristic relies on: the siting-evaluation memo
returns the identical result object, and parallel annealing chains are
deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SitingProblem,
    StorageMode,
)
from repro.core.problem import GreenEnforcement
from repro.core.provisioning import (
    ProvisioningCompiler,
    ProvisioningModelBuilder,
    solve_provisioning,
)
from repro.lpsolver import SolverOptions


def _canonical_rows(model):
    """Dense [A | row_lower | row_upper] with rows sorted canonically."""
    row_form = model.to_row_form()
    dense = np.column_stack(
        [row_form.matrix.toarray(), row_form.row_lower, row_form.row_upper]
    )
    dense = np.nan_to_num(dense, posinf=1e300, neginf=-1e300)
    return dense[np.lexsort(dense.T[::-1])]


def _scenario(two_site_problem, storage, enforcement):
    return two_site_problem.with_updates(storage=storage, green_enforcement=enforcement)


SCENARIOS = [
    (StorageMode.NET_METERING, GreenEnforcement.ANNUAL),
    (StorageMode.NET_METERING, GreenEnforcement.PER_EPOCH),
    (StorageMode.BATTERIES, GreenEnforcement.ANNUAL),
    (StorageMode.NONE, GreenEnforcement.ANNUAL),
]


class TestBuilderEquivalence:
    @pytest.mark.parametrize("storage,enforcement", SCENARIOS)
    def test_identical_matrices(self, two_site_problem, storage, enforcement):
        problem = _scenario(two_site_problem, storage, enforcement)
        siting = {problem.profiles[0].name: "large", problem.profiles[1].name: "small"}
        scalar = ProvisioningModelBuilder(problem, siting, backend="scalar")
        vectorized = ProvisioningModelBuilder(problem, siting, backend="vectorized")
        assert scalar.model.num_variables == vectorized.model.num_variables
        assert scalar.model.num_constraints == vectorized.model.num_constraints
        np.testing.assert_allclose(
            _canonical_rows(scalar.model),
            _canonical_rows(vectorized.model),
            rtol=1e-12,
            atol=1e-12,
        )
        # Objectives and bounds agree exactly.
        scalar_compiled = scalar.model.to_matrices()
        vector_compiled = vectorized.model.to_matrices()
        np.testing.assert_allclose(
            scalar_compiled.cost, vector_compiled.cost, rtol=1e-12, atol=1e-12
        )
        np.testing.assert_array_equal(scalar_compiled.lower, vector_compiled.lower)
        np.testing.assert_array_equal(scalar_compiled.upper, vector_compiled.upper)
        assert scalar.model.objective.constant == pytest.approx(
            vectorized.model.objective.constant, rel=1e-12
        )

    @pytest.mark.parametrize("storage,enforcement", SCENARIOS)
    def test_identical_objectives(self, two_site_problem, storage, enforcement):
        problem = _scenario(two_site_problem, storage, enforcement)
        siting = {profile.name: "large" for profile in problem.profiles}
        scalar = solve_provisioning(problem, siting, backend="scalar")
        vectorized = solve_provisioning(problem, siting, backend="vectorized")
        linprog = solve_provisioning(
            problem, siting, options=SolverOptions(backend="linprog")
        )
        assert scalar.feasible and vectorized.feasible and linprog.feasible
        assert vectorized.monthly_cost == pytest.approx(scalar.monthly_cost, rel=1e-6)
        assert linprog.monthly_cost == pytest.approx(scalar.monthly_cost, rel=1e-6)
        # The extracted plans price to the same total through the cost model.
        assert vectorized.plan.total_monthly_cost == pytest.approx(
            scalar.plan.total_monthly_cost, rel=1e-6
        )

    def test_template_route_matches_model_route(self, two_site_problem):
        """The cached-pattern row form is entry-for-entry the Model's row form."""
        compiler = ProvisioningCompiler(two_site_problem)
        names = [profile.name for profile in two_site_problem.profiles]
        for siting in (
            {names[0]: "large", names[1]: "large"},
            # Same shape, different location order: exercises template reuse.
            {names[1]: "large", names[0]: "large"},
            {names[0]: "small"},
        ):
            fast = compiler.compile_row_form(siting, enforce_spread=True)
            assert fast is not None
            row_form, layouts = fast
            model, _ = compiler.compile(siting, enforce_spread=True)
            reference = model.to_row_form()
            assert row_form.shape == reference.shape
            lhs = np.column_stack(
                [row_form.matrix.toarray(), row_form.row_lower, row_form.row_upper]
            )
            rhs = np.column_stack(
                [reference.matrix.toarray(), reference.row_lower, reference.row_upper]
            )
            lhs = np.nan_to_num(lhs, posinf=1e300, neginf=-1e300)
            rhs = np.nan_to_num(rhs, posinf=1e300, neginf=-1e300)
            np.testing.assert_array_equal(
                lhs[np.lexsort(lhs.T[::-1])], rhs[np.lexsort(rhs.T[::-1])]
            )
            np.testing.assert_array_equal(row_form.cost, reference.cost)
            np.testing.assert_array_equal(row_form.lower, reference.lower)
            np.testing.assert_array_equal(row_form.upper, reference.upper)
            assert len(layouts) == len(siting)

    @pytest.mark.slow
    def test_identical_matrices_hourly_grid(self, two_site_problem, profile_builder, hourly_grid, small_catalog):
        """The equivalence holds on the fine 96-epoch grid too."""
        profiles = [
            profile_builder.build(small_catalog.get(profile.name), hourly_grid)
            for profile in two_site_problem.profiles
        ]
        problem = SitingProblem(
            profiles=profiles,
            params=two_site_problem.params,
            sources=two_site_problem.sources,
            storage=StorageMode.BATTERIES,
        )
        siting = {profiles[0].name: "large", profiles[1].name: "large"}
        scalar = ProvisioningModelBuilder(problem, siting, backend="scalar")
        vectorized = ProvisioningModelBuilder(problem, siting, backend="vectorized")
        np.testing.assert_allclose(
            _canonical_rows(scalar.model),
            _canonical_rows(vectorized.model),
            rtol=1e-12,
            atol=1e-12,
        )


class TestEvaluationCache:
    @pytest.fixture()
    def solver(self, two_site_problem, fast_settings):
        return HeuristicSolver(two_site_problem, fast_settings)

    def test_cache_returns_identical_result_object(self, solver, two_site_problem):
        siting = {profile.name: "large" for profile in two_site_problem.profiles}
        first = solver.evaluate(siting)
        second = solver.evaluate(dict(siting))
        assert second is first  # bit-identical: the memo hands back the same object
        assert solver.cache_hits == 1
        # Lazy plans materialise once and are shared through the cached result.
        assert second.plan is first.plan

    def test_cache_keyed_by_frozen_siting(self, solver, two_site_problem):
        names = [profile.name for profile in two_site_problem.profiles]
        forward = solver.evaluate({names[0]: "large", names[1]: "large"})
        reversed_order = solver.evaluate({names[1]: "large", names[0]: "large"})
        assert reversed_order is forward


class TestParallelDeterminism:
    def _solve(self, problem, parallel, workers, executor="thread"):
        settings = SearchSettings(
            keep_locations=6,
            max_iterations=10,
            patience=6,
            num_chains=3,
            seed=11,
            max_datacenters=4,
            parallel_chains=parallel,
            max_workers=workers,
            executor=executor,
        )
        return HeuristicSolver(problem, settings).solve()

    def test_parallel_chains_deterministic_under_fixed_seed(self, all_profiles, params):
        problem = SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        first = self._solve(problem, parallel=True, workers=4)
        second = self._solve(problem, parallel=True, workers=4)
        fewer_workers = self._solve(problem, parallel=True, workers=2)
        assert first.feasible
        assert first.monthly_cost == second.monthly_cost == fewer_workers.monthly_cost
        assert first.history == second.history == fewer_workers.history
        names = sorted(dc.name for dc in first.plan.datacenters)
        assert names == sorted(dc.name for dc in second.plan.datacenters)
        assert names == sorted(dc.name for dc in fewer_workers.plan.datacenters)

    def test_process_executor_matches_thread_and_serial(self, all_profiles, params):
        """The executor kind is pure mechanism: identical bits on every path."""
        problem = SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        thread = self._solve(problem, parallel=True, workers=4, executor="thread")
        serial = self._solve(problem, parallel=True, workers=1, executor="serial")
        process = self._solve(problem, parallel=True, workers=4, executor="process")
        assert process.monthly_cost == thread.monthly_cost == serial.monthly_cost
        assert process.history == thread.history == serial.history
        names = sorted(dc.name for dc in process.plan.datacenters)
        assert names == sorted(dc.name for dc in thread.plan.datacenters)
        assert names == sorted(dc.name for dc in serial.plan.datacenters)

    def test_parallel_not_worse_than_initial(self, all_profiles, params):
        problem = SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        solution = self._solve(problem, parallel=True, workers=4)
        solver = HeuristicSolver(problem, SearchSettings(keep_locations=6, seed=11))
        initial = solver.evaluate(solver._initial_siting(solver.filter_locations()))
        assert solution.monthly_cost <= initial.monthly_cost + 1e-6
