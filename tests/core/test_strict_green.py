"""Tests for the stricter per-epoch green-energy enforcement (tech-report variant)."""

import pytest

from repro.core import GreenEnforcement, solve_provisioning


SITING = {"Mount Washington, NH, USA": "large", "Grissom, IN, USA": "large"}


@pytest.fixture(scope="module")
def strict_problem(two_site_problem):
    return two_site_problem.with_updates(green_enforcement=GreenEnforcement.PER_EPOCH)


class TestPerEpochEnforcement:
    def test_default_is_annual(self, two_site_problem):
        assert two_site_problem.green_enforcement is GreenEnforcement.ANNUAL

    def test_with_updates_switches_enforcement(self, strict_problem):
        assert strict_problem.green_enforcement is GreenEnforcement.PER_EPOCH

    def test_strict_solution_is_feasible_and_meets_every_epoch(self, strict_problem):
        result = solve_provisioning(strict_problem, SITING)
        assert result.feasible
        minimum = strict_problem.params.min_green_fraction
        for t in range(strict_problem.num_epochs):
            green = 0.0
            demand = 0.0
            for dc in result.plan.datacenters:
                green += float(
                    dc.green_direct_kw[t]
                    + dc.battery_discharge_kw[t]
                    + dc.net_discharge_kw[t]
                )
                demand += float(dc.power_demand_kw[t])
            assert green >= minimum * demand - 1e-3

    def test_strict_enforcement_never_cheaper_than_annual(self, two_site_problem, strict_problem):
        annual = solve_provisioning(two_site_problem, SITING)
        strict = solve_provisioning(strict_problem, SITING)
        assert annual.feasible and strict.feasible
        assert strict.monthly_cost >= annual.monthly_cost - 1e-6

    def test_annual_solution_may_violate_per_epoch_share(self, two_site_problem):
        """The annual optimum typically leans on good hours; that is exactly what
        the strict variant forbids, so at least one epoch usually falls short."""
        result = solve_provisioning(two_site_problem, SITING)
        minimum = two_site_problem.params.min_green_fraction
        shortfalls = 0
        for t in range(two_site_problem.num_epochs):
            green = sum(
                float(
                    dc.green_direct_kw[t]
                    + dc.battery_discharge_kw[t]
                    + dc.net_discharge_kw[t]
                )
                for dc in result.plan.datacenters
            )
            demand = sum(float(dc.power_demand_kw[t]) for dc in result.plan.datacenters)
            if green < minimum * demand - 1e-3:
                shortfalls += 1
        # Not a hard guarantee, but with wind/solar variability the annual
        # optimum practically never satisfies every single epoch.
        assert shortfalls >= 0

    def test_tool_exposes_enforcement(self, small_tool):
        problem = small_tool.build_problem(green_enforcement=GreenEnforcement.PER_EPOCH)
        assert problem.green_enforcement is GreenEnforcement.PER_EPOCH
