"""Tests for the heuristic solver, the full MILP and the placement tool."""

import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SingleSiteAnalyzer,
    SitingProblem,
    StorageMode,
    solve_full_milp,
    solve_provisioning,
)


class TestSearchSettings:
    def test_defaults_valid(self):
        settings = SearchSettings()
        assert settings.keep_locations >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep_locations": 0},
            {"max_iterations": 0},
            {"num_chains": 0},
            {"cooling": 0.0},
            {"move_weights": {"teleport": 1.0}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SearchSettings(**kwargs)


class TestSingleSiteAnalyzer:
    def test_brown_cost_in_paper_range(self, anchor_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        result = analyzer.cost_at(anchor_profiles["Kiev, Ukraine"], 25_000.0, 0.0)
        assert result.feasible
        # Fig. 6: brown 25 MW datacenters cost roughly $8.7M-12.8M per month.
        assert 7e6 <= result.monthly_cost <= 14e6

    def test_green_requirement_increases_cost(self, anchor_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        profile = anchor_profiles["Grissom, IN, USA"]
        brown = analyzer.cost_at(profile, 25_000.0, 0.0)
        green = analyzer.cost_at(profile, 25_000.0, 0.5, EnergySources.SOLAR_AND_WIND)
        assert green.monthly_cost > brown.monthly_cost

    def test_wind_location_cheaper_with_wind_than_solar(self, anchor_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        profile = anchor_profiles["Mount Washington, NH, USA"]
        wind = analyzer.cost_at(profile, 25_000.0, 0.5, EnergySources.WIND_ONLY)
        solar = analyzer.cost_at(profile, 25_000.0, 0.5, EnergySources.SOLAR_ONLY)
        assert wind.monthly_cost < solar.monthly_cost

    def test_table_row_fields(self, anchor_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        row = analyzer.cost_at(anchor_profiles["Nairobi, Kenya"], 25_000.0, 0.5).table_row()
        assert row["location"] == "Nairobi, Kenya"
        assert row["solar_capacity_factor_pct"] == pytest.approx(20.9, abs=1.0)
        assert row["land_usd_per_m2"] == pytest.approx(14.7)

    def test_invalid_capacity(self, anchor_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        with pytest.raises(ValueError):
            analyzer.cost_at(anchor_profiles["Nairobi, Kenya"], -1.0)

    def test_cost_distribution(self, all_profiles, params):
        analyzer = SingleSiteAnalyzer(params)
        costs = analyzer.cost_distribution(all_profiles[:4], 25_000.0, 0.0)
        assert len(costs) == 4
        assert all(c.monthly_cost > 0 for c in costs if c.feasible)


class TestHeuristicSolver:
    @pytest.fixture(scope="class")
    def problem(self, all_profiles, params):
        return SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )

    def test_filtering_keeps_requested_count(self, problem, fast_settings):
        solver = HeuristicSolver(problem, fast_settings)
        candidates = solver.filter_locations()
        assert len(candidates) <= max(fast_settings.keep_locations, problem.min_datacenters)
        assert len(candidates) >= problem.min_datacenters
        assert len(set(candidates)) == len(candidates)

    def test_solve_returns_feasible_plan(self, case_study_solution):
        assert case_study_solution.feasible
        assert case_study_solution.plan is not None
        assert case_study_solution.evaluations > 0
        assert case_study_solution.history

    def test_availability_minimum_respected(self, case_study_plan):
        assert case_study_plan.num_datacenters >= 2
        assert case_study_plan.availability >= 0.99999

    def test_green_requirement_met(self, case_study_plan):
        assert case_study_plan.green_fraction >= 0.5 - 1e-3

    def test_solution_not_worse_than_initial_state(self, problem, fast_settings):
        solver = HeuristicSolver(problem, fast_settings)
        candidates = solver.filter_locations()
        initial = solver.evaluate(solver._initial_siting(candidates))
        best = solver.solve()
        assert best.monthly_cost <= initial.monthly_cost + 1e-6

    def test_evaluate_rejects_too_few_datacenters(self, problem, fast_settings):
        solver = HeuristicSolver(problem, fast_settings)
        result = solver.evaluate({problem.profiles[0].name: "large"})
        assert not result.feasible

    def test_evaluation_cache_hit(self, problem, fast_settings):
        solver = HeuristicSolver(problem, fast_settings)
        siting = {problem.profiles[0].name: "large", problem.profiles[1].name: "large"}
        solver.evaluate(siting)
        count = solver._evaluations
        solver.evaluate(dict(siting))
        assert solver._evaluations == count

    def test_neighbour_moves_respect_bounds(self, problem, fast_settings):
        import random

        solver = HeuristicSolver(problem, fast_settings)
        candidates = solver.filter_locations()
        siting = solver._initial_siting(candidates)
        rng = random.Random(3)
        for _ in range(50):
            neighbour = solver._neighbour(siting, candidates, rng, fast_settings.move_weights)
            if neighbour is None:
                continue
            assert len(neighbour) >= problem.min_datacenters
            assert len(neighbour) <= fast_settings.max_datacenters
            assert set(neighbour.values()) <= {"small", "large"}


class TestFullMilp:
    def test_milp_matches_heuristic_on_brown_extreme(self, anchor_profiles, params):
        """The paper validates the heuristic against the MILP at the 0 % extreme."""
        profiles = [
            anchor_profiles["Kiev, Ukraine"],
            anchor_profiles["Grissom, IN, USA"],
            anchor_profiles["Burke Lakefront, OH, USA"],
        ]
        problem = SitingProblem(
            profiles=profiles,
            params=params.with_updates(total_capacity_kw=20_000.0, min_green_fraction=0.0),
            sources=EnergySources.NONE,
        )
        milp = solve_full_milp(problem)
        assert milp.feasible
        # Exhaustive enumeration of 2-site sitings for comparison.
        best_enumerated = float("inf")
        names = [p.name for p in profiles]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                for size in ("small", "large"):
                    result = solve_provisioning(
                        problem, {names[i]: size, names[j]: size}, enforce_spread=False
                    )
                    if result.feasible:
                        best_enumerated = min(best_enumerated, result.monthly_cost)
        assert milp.monthly_cost <= best_enumerated * 1.02

    def test_milp_selects_at_least_min_datacenters(self, anchor_profiles, params):
        profiles = [
            anchor_profiles["Kiev, Ukraine"],
            anchor_profiles["Grissom, IN, USA"],
        ]
        problem = SitingProblem(
            profiles=profiles,
            params=params.with_updates(total_capacity_kw=10_000.0, min_green_fraction=0.0),
            sources=EnergySources.NONE,
        )
        result = solve_full_milp(problem)
        assert result.feasible
        assert result.plan.num_datacenters >= problem.min_datacenters


class TestPlacementTool:
    def test_profiles_cached(self, small_tool):
        assert small_tool.profiles is small_tool.profiles

    def test_build_problem_scenario_switches(self, small_tool):
        problem = small_tool.build_problem(
            total_capacity_kw=30_000.0,
            min_green_fraction=0.75,
            sources=EnergySources.WIND_ONLY,
            storage=StorageMode.BATTERIES,
            migration_factor=0.5,
            net_meter_credit=0.8,
        )
        assert problem.params.total_capacity_kw == 30_000.0
        assert problem.params.min_green_fraction == 0.75
        assert problem.params.migration_factor == 0.5
        assert problem.params.credit_net_meter == 0.8
        assert problem.sources is EnergySources.WIND_ONLY
        assert problem.storage is StorageMode.BATTERIES

    def test_zero_green_switches_to_brown(self, small_tool):
        problem = small_tool.build_problem(min_green_fraction=0.0)
        assert problem.sources is EnergySources.NONE

    def test_plan_network_produces_requested_capacity(self, case_study_plan):
        assert case_study_plan.total_capacity_kw >= 50_000.0 - 1e-3

    def test_single_site_costs_named_subset(self, small_tool):
        costs = small_tool.single_site_costs(names=["Kiev, Ukraine", "Nairobi, Kenya"])
        assert [c.name for c in costs] == ["Kiev, Ukraine", "Nairobi, Kenya"]

    def test_green_percentage_sweep_monotone_cost(self, small_tool, fast_settings):
        sweep = small_tool.green_percentage_sweep(
            [0.0, 1.0],
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
            settings=fast_settings,
        )
        assert sweep[1.0].monthly_cost >= sweep[0.0].monthly_cost * 0.98
