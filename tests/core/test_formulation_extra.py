"""Additional tests for the full MILP formulation and its interaction with scenarios."""

import pytest

from repro.core import (
    EnergySources,
    SitingProblem,
    StorageMode,
    build_full_milp,
    solve_full_milp,
    solve_provisioning,
)
from repro.lpsolver import SolverOptions


@pytest.fixture(scope="module")
def three_profiles(anchor_profiles):
    return [
        anchor_profiles["Kiev, Ukraine"],
        anchor_profiles["Grissom, IN, USA"],
        anchor_profiles["Burke Lakefront, OH, USA"],
    ]


class TestBuildFullMilp:
    def test_model_is_mixed_integer(self, three_profiles, params):
        problem = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=20_000.0, min_green_fraction=0.0),
            sources=EnergySources.NONE,
        )
        model, sites = build_full_milp(problem)
        assert model.is_mixed_integer
        assert len(sites) == 3
        # Two binaries per site plus the continuous machinery.
        assert model.num_variables > 6

    def test_availability_constraint_present(self, three_profiles, params):
        problem = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=20_000.0, min_green_fraction=0.0),
            sources=EnergySources.NONE,
        )
        model, _ = build_full_milp(problem)
        names = [constraint.name for constraint in model.constraints]
        assert "availability" in names

    def test_green_constraint_only_when_required(self, three_profiles, params):
        brown = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=20_000.0, min_green_fraction=0.0),
            sources=EnergySources.NONE,
        )
        green = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=20_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
        )
        brown_names = {c.name for c in build_full_milp(brown)[0].constraints}
        green_names = {c.name for c in build_full_milp(green)[0].constraints}
        assert "min_green_fraction" not in brown_names
        assert "min_green_fraction" in green_names


class TestSolveFullMilp:
    def test_green_milp_meets_requirement(self, three_profiles, params):
        problem = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=15_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        result = solve_full_milp(problem, SolverOptions(time_limit=90.0))
        assert result.feasible
        assert result.plan.green_fraction >= 0.5 - 1e-3
        assert result.plan.num_datacenters >= problem.min_datacenters

    def test_milp_never_beaten_by_fixed_siting(self, three_profiles, params):
        """Any specific siting the heuristic could try costs at least the MILP optimum."""
        problem = SitingProblem(
            profiles=three_profiles,
            params=params.with_updates(total_capacity_kw=15_000.0, min_green_fraction=0.25),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        milp = solve_full_milp(problem, SolverOptions(time_limit=90.0))
        assert milp.feasible
        names = [profile.name for profile in three_profiles]
        fixed = solve_provisioning(
            problem, {names[0]: "small", names[1]: "small"}, enforce_spread=False
        )
        assert fixed.feasible
        assert milp.monthly_cost <= fixed.monthly_cost * 1.02
