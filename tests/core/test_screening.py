"""Differential tests of the two-stage filter pricing pipeline.

The whole scheme rests on two exactness claims, and each is pinned against
the LP ground truth:

* **admissibility** — the vectorized screen's lower bound never exceeds the
  exact single-site LP optimum, and its infeasibility certificates only fire
  on LPs that really are infeasible, across the scenario matrix the
  experiments use (Fig. 6 brown/solar/wind sweeps, the Table II storage
  modes, the Section III-D search configuration);
* **batching** — the block-diagonal stacked solve returns the same per-site
  costs as the per-site warm-started solves it replaces, and the filter
  shortlist is bit-identical whichever stage combination (screen on/off,
  batch on/off) or executor (serial/thread/process) produced it.
"""

import numpy as np
import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SitingProblem,
    StorageMode,
)
from repro.core.problem import GreenEnforcement
from repro.core.provisioning import ProvisioningCompiler, solve_provisioning
from repro.core.screening import price_batch, price_per_site, screen_lower_bounds
from repro.core.single_site import (
    SingleSiteAnalyzer,
    scoring_parameters,
    scoring_sources,
    single_site_size_class,
)
from repro.lpsolver import stack_block_diagonal
from repro.lpsolver.highs_backend import AVAILABLE as HIGHS_AVAILABLE


def _pricing_problem(problem):
    """The filter's single-site pricing problem for ``problem``."""
    share_kw = problem.params.total_capacity_kw / max(1, problem.min_datacenters)
    score_green = min(problem.params.min_green_fraction, 0.5)
    params = scoring_parameters(problem.params, share_kw, score_green)
    return (
        problem.with_updates(
            params=params,
            sources=scoring_sources(score_green, problem.sources),
            green_enforcement=GreenEnforcement.ANNUAL,
        ),
        share_kw,
    )


def _exact_rows(pricing_problem, share_kw, options):
    compiler = ProvisioningCompiler(pricing_problem)
    rows = {}
    for profile in pricing_problem.profiles:
        size_class = single_site_size_class(
            share_kw, profile, pricing_problem.params
        )
        result = solve_provisioning(
            pricing_problem,
            {profile.name: size_class},
            options=options,
            enforce_spread=False,
            compiler=compiler,
        )
        rows[profile.name] = (result.monthly_cost, result.feasible)
    return rows


#: (total capacity, green fraction, sources, storage) — the Fig. 6 sweep
#: configurations, the Table II storage modes and the Sec. III-D search
#: configuration, which together exercise every bound term (brown-only
#: pricing, solar/wind gamma, batteries, no-storage dead epochs).
SCENARIOS = [
    pytest.param(50_000.0, 0.5, EnergySources.SOLAR_AND_WIND, StorageMode.NET_METERING, id="sec3d"),
    pytest.param(25_000.0, 0.0, EnergySources.SOLAR_AND_WIND, StorageMode.NET_METERING, id="fig06-brown"),
    pytest.param(25_000.0, 0.5, EnergySources.SOLAR_ONLY, StorageMode.NET_METERING, id="fig06-solar"),
    pytest.param(25_000.0, 0.5, EnergySources.WIND_ONLY, StorageMode.NET_METERING, id="fig06-wind"),
    pytest.param(50_000.0, 0.5, EnergySources.SOLAR_AND_WIND, StorageMode.BATTERIES, id="table2-batteries"),
    pytest.param(50_000.0, 0.3, EnergySources.SOLAR_AND_WIND, StorageMode.NONE, id="table2-none"),
]


def _network_problem(all_profiles, params, capacity, green, sources, storage):
    return SitingProblem(
        profiles=all_profiles,
        params=params.with_updates(
            total_capacity_kw=capacity, min_green_fraction=green
        ),
        sources=sources,
        storage=storage,
    )


class TestScreenAdmissibility:
    @pytest.mark.parametrize("capacity,green,sources,storage", SCENARIOS)
    def test_bound_below_exact_cost(
        self, all_profiles, params, solver_options, capacity, green, sources, storage
    ):
        problem = _network_problem(
            all_profiles, params, capacity, green, sources, storage
        )
        pricing, share_kw = _pricing_problem(problem)
        screen = screen_lower_bounds(pricing)
        exact = _exact_rows(pricing, share_kw, solver_options)
        assert screen.names == [profile.name for profile in pricing.profiles]
        for name, bound, certified in zip(
            screen.names, screen.lower_bounds, screen.certified_infeasible
        ):
            cost, feasible = exact[name]
            if certified:
                # Certificates are sound: the LP really is infeasible.
                assert not feasible, name
            elif feasible:
                # Admissibility: the bound never exceeds the LP optimum.
                assert bound <= cost, (name, bound, cost)

    def test_order_sorts_certified_last(self, all_profiles, params):
        problem = _network_problem(
            all_profiles,
            params,
            50_000.0,
            0.3,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NONE,
        )
        pricing, _ = _pricing_problem(problem)
        screen = screen_lower_bounds(pricing)
        ordered = screen.lower_bounds[screen.order]
        finite = ordered[np.isfinite(ordered)]
        assert np.all(np.diff(finite) >= 0)
        assert np.all(np.isinf(ordered[len(finite):]))


class TestBatchPricing:
    def test_stack_block_diagonal_shapes(self, two_site_problem):
        compiler = ProvisioningCompiler(two_site_problem)
        names = [profile.name for profile in two_site_problem.profiles]
        compiled = [
            compiler.compile_row_form({name: "large"}, enforce_spread=False)
            for name in names
        ]
        assert all(entry is not None for entry in compiled)
        blocks = [entry[0] for entry in compiled]
        stacked, col_offsets, row_offsets = stack_block_diagonal(blocks)
        assert stacked.shape == (
            sum(block.shape[0] for block in blocks),
            sum(block.shape[1] for block in blocks),
        )
        assert list(col_offsets) == [0, blocks[0].shape[1], stacked.shape[1]]
        assert list(row_offsets) == [0, blocks[0].shape[0], stacked.shape[0]]
        # Each block's columns only touch its own rows.
        for i, block in enumerate(blocks):
            for col in range(col_offsets[i], col_offsets[i + 1]):
                touched = stacked.a_indices[
                    stacked.a_indptr[col] : stacked.a_indptr[col + 1]
                ]
                assert np.all(touched >= row_offsets[i])
                assert np.all(touched < row_offsets[i + 1])
        assert stacked.objective_constant == pytest.approx(
            sum(block.objective_constant for block in blocks)
        )

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_block_diagonal([])

    @pytest.mark.skipif(not HIGHS_AVAILABLE, reason="needs the direct HiGHS backend")
    @pytest.mark.parametrize("capacity,green,sources,storage", SCENARIOS)
    def test_batch_matches_per_site(
        self, all_profiles, params, solver_options, capacity, green, sources, storage
    ):
        problem = _network_problem(
            all_profiles, params, capacity, green, sources, storage
        )
        pricing, share_kw = _pricing_problem(problem)
        sitings = [
            (
                profile.name,
                single_site_size_class(share_kw, profile, pricing.params),
            )
            for profile in pricing.profiles
        ]
        batched = price_batch(pricing, sitings, solver_options)
        unbatched = price_per_site(pricing, sitings, solver_options)
        assert [row[0] for row in batched] == [row[0] for row in unbatched]
        assert [row[2] for row in batched] == [row[2] for row in unbatched]
        for (_, batch_cost, feasible), (_, site_cost, _) in zip(batched, unbatched):
            if feasible:
                assert batch_cost == pytest.approx(site_cost, rel=1e-7)


class TestFilterShortlistInvariance:
    """The shortlist is identical for every stage/executor combination."""

    @pytest.fixture(scope="class")
    def reference_shortlist(self, all_profiles, params):
        problem = _network_problem(
            all_profiles,
            params,
            50_000.0,
            0.5,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NET_METERING,
        )
        settings = SearchSettings(
            keep_locations=8,
            num_chains=1,
            seed=3,
            executor="serial",
            filter_screen=False,
            filter_batch=False,
        )
        return problem, HeuristicSolver(problem, settings).filter_locations()

    @pytest.mark.parametrize("screen", [True, False], ids=["screen", "noscreen"])
    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "persite"])
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_stage_and_executor_invariance(
        self, reference_shortlist, screen, batch, executor
    ):
        problem, expected = reference_shortlist
        settings = SearchSettings(
            keep_locations=8,
            num_chains=1,
            seed=3,
            executor=executor,
            max_workers=2,
            filter_screen=screen,
            filter_batch=batch,
        )
        solver = HeuristicSolver(problem, settings)
        assert solver.filter_locations() == expected
        stats = solver._filter_stats
        assert stats["filter_candidates"] == len(problem.profiles)
        assert stats["filter_priced"] <= stats["filter_candidates"]
        if not screen:
            assert stats["filter_priced"] == stats["filter_candidates"]


class TestCostDistributionTwoStage:
    def test_batch_matches_legacy_sweep(self, all_profiles, params, solver_options):
        analyzer = SingleSiteAnalyzer(params=params, solver_options=solver_options)
        legacy = analyzer.cost_distribution(
            all_profiles, min_green_fraction=0.5, batch=False
        )
        batched = analyzer.cost_distribution(
            all_profiles, min_green_fraction=0.5, batch=True
        )
        assert [cost.name for cost in batched] == [cost.name for cost in legacy]
        assert [cost.feasible for cost in batched] == [
            cost.feasible for cost in legacy
        ]
        for slim, full in zip(batched, legacy):
            if full.feasible:
                assert slim.monthly_cost == pytest.approx(
                    full.monthly_cost, rel=1e-7
                )
            assert slim.result is None  # batched sweeps are slim

    def test_screen_top_k_matches_brute_force(
        self, all_profiles, params, solver_options
    ):
        analyzer = SingleSiteAnalyzer(params=params, solver_options=solver_options)
        full = analyzer.cost_distribution(
            all_profiles, min_green_fraction=0.5, batch=False
        )
        expected = sorted(
            ((cost.monthly_cost, cost.name) for cost in full if cost.feasible)
        )[:5]
        top = analyzer.cost_distribution(
            all_profiles, min_green_fraction=0.5, screen_top_k=5
        )
        assert [(pytest.approx(cost, rel=1e-7), name) for cost, name in expected] == [
            (site.monthly_cost, site.name) for site in top
        ]
