"""Tests for the availability model and the SitingProblem container."""

import pytest

from repro.core import (
    EnergySources,
    SitingProblem,
    StorageMode,
    Tier,
    datacenters_needed,
    network_availability,
)
from repro.core.availability import availability_from_binomial


class TestNetworkAvailability:
    def test_single_datacenter(self):
        assert network_availability(1, 0.99827) == pytest.approx(0.99827)

    def test_more_datacenters_increase_availability(self):
        one = network_availability(1, 0.9967)
        two = network_availability(2, 0.9967)
        three = network_availability(3, 0.9967)
        assert one < two < three < 1.0

    def test_matches_binomial_form(self):
        for n in range(1, 6):
            assert network_availability(n, 0.9974) == pytest.approx(
                availability_from_binomial(n, 0.9974), abs=1e-12
            )

    def test_zero_datacenters(self):
        assert network_availability(0, 0.99) == 0.0
        assert availability_from_binomial(0, 0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            network_availability(-1, 0.99)
        with pytest.raises(ValueError):
            network_availability(1, 1.5)

    def test_two_near_tier3_datacenters_reach_five_nines(self):
        """The paper's base case: ~Tier III DCs, 99.999 % target, 2 DCs suffice."""
        assert network_availability(2, 0.99827) >= 0.99999

    def test_tier_enum_values(self):
        assert Tier.TIER_I.availability == pytest.approx(0.9967)
        assert Tier.TIER_IV.availability == pytest.approx(0.99995)
        assert Tier.NEAR_TIER_III.availability == pytest.approx(0.99827)


class TestDatacentersNeeded:
    def test_paper_default_needs_two(self):
        assert datacenters_needed(0.99827, 0.99999) == 2

    def test_tier4_needs_fewer_than_tier1(self):
        assert datacenters_needed(0.99995, 0.99999) <= datacenters_needed(0.9967, 0.99999)

    def test_loose_requirement_needs_one(self):
        assert datacenters_needed(0.999, 0.99) == 1

    def test_resulting_count_meets_target(self):
        for a in (0.9967, 0.9974, 0.9998, 0.99995):
            n = datacenters_needed(a, 0.999999)
            assert network_availability(n, a) >= 0.999999
            if n > 1:
                assert network_availability(n - 1, a) < 0.999999

    def test_validation(self):
        with pytest.raises(ValueError):
            datacenters_needed(1.2, 0.999)
        with pytest.raises(ValueError):
            datacenters_needed(0.99, 1.0)


class TestSitingProblem:
    def test_basic_properties(self, two_site_problem):
        assert two_site_problem.num_locations == 2
        assert two_site_problem.num_epochs == two_site_problem.epochs.num_epochs
        assert two_site_problem.min_datacenters == 2

    def test_profile_lookup(self, two_site_problem):
        profile = two_site_problem.profile_by_name("Grissom, IN, USA")
        assert profile.name == "Grissom, IN, USA"
        with pytest.raises(KeyError):
            two_site_problem.profile_by_name("nowhere")

    def test_restricted_to(self, two_site_problem):
        restricted = two_site_problem.restricted_to(["Grissom, IN, USA"])
        assert restricted.num_locations == 1
        with pytest.raises(KeyError):
            two_site_problem.restricted_to(["nowhere"])

    def test_with_updates(self, two_site_problem):
        updated = two_site_problem.with_updates(storage=StorageMode.BATTERIES)
        assert updated.storage is StorageMode.BATTERIES
        assert two_site_problem.storage is StorageMode.NET_METERING

    def test_requires_profiles(self, params):
        with pytest.raises(ValueError):
            SitingProblem(profiles=[], params=params)

    def test_duplicate_profiles_rejected(self, anchor_profiles, params):
        profile = anchor_profiles["Nairobi, Kenya"]
        with pytest.raises(ValueError):
            SitingProblem(profiles=[profile, profile], params=params)

    def test_green_requirement_without_sources_rejected(self, anchor_profiles, params):
        with pytest.raises(ValueError):
            SitingProblem(
                profiles=[anchor_profiles["Nairobi, Kenya"]],
                params=params.with_updates(min_green_fraction=0.5),
                sources=EnergySources.NONE,
            )

    def test_mixed_epoch_grids_rejected(self, anchor_profiles, profile_builder, hourly_grid, small_catalog, params):
        coarse = anchor_profiles["Nairobi, Kenya"]
        fine = profile_builder.build(small_catalog.get("Kiev, Ukraine"), hourly_grid)
        with pytest.raises(ValueError):
            SitingProblem(profiles=[coarse, fine], params=params)

    def test_energy_sources_flags(self):
        assert EnergySources.SOLAR_ONLY.allows_solar
        assert not EnergySources.SOLAR_ONLY.allows_wind
        assert EnergySources.WIND_ONLY.allows_wind
        assert EnergySources.SOLAR_AND_WIND.allows_solar and EnergySources.SOLAR_AND_WIND.allows_wind
        assert not EnergySources.NONE.allows_solar and not EnergySources.NONE.allows_wind
