"""Tests for the Table I parameters and the CAPEX/OPEX cost model."""

import numpy as np
import pytest

from repro.core import CostModel, FinancingModel


class TestFrameworkParameters:
    def test_defaults_match_table1(self, params):
        assert params.area_dc_m2_per_kw == pytest.approx(0.557)
        assert params.area_solar_m2_per_kw == pytest.approx(9.41)
        assert params.area_wind_m2_per_kw == pytest.approx(18.21)
        assert params.price_build_solar_per_kw == pytest.approx(5250.0)
        assert params.price_build_wind_per_kw == pytest.approx(2100.0)
        assert params.price_server == 2000.0
        assert params.price_switch == 20000.0
        assert params.servers_per_switch == 32
        assert params.price_battery_per_kwh == 200.0
        assert params.battery_efficiency == 0.75
        assert params.cost_line_power_per_km == pytest.approx(310_000.0)
        assert params.cost_line_network_per_km == pytest.approx(300_000.0)

    def test_power_per_server_includes_switch_share(self, params):
        assert params.power_per_server_kw == pytest.approx(0.275 + 0.480 / 32)

    def test_num_servers_for_25mw(self, params):
        # The paper's case study quotes ~91,000 servers for two 25 MW datacenters.
        servers = params.num_servers(25_000.0)
        assert 80_000 <= servers <= 95_000

    def test_dc_build_price_small_vs_large(self, params):
        assert params.price_build_dc_per_kw(5_000.0) == 15_000.0
        assert params.price_build_dc_per_kw(25_000.0) == 12_000.0

    def test_with_updates_returns_new_object(self, params):
        updated = params.with_updates(min_green_fraction=0.8)
        assert updated.min_green_fraction == 0.8
        assert params.min_green_fraction == 0.5
        assert updated is not params

    @pytest.mark.parametrize(
        "field, value",
        [
            ("total_capacity_kw", -1.0),
            ("min_green_fraction", 1.5),
            ("min_availability", 1.5),
            ("migration_factor", 2.0),
            ("battery_efficiency", 0.0),
            ("credit_net_meter", -0.1),
            ("price_server", -1.0),
            ("servers_per_switch", 0),
            ("brown_plant_cap_fraction", 0.0),
        ],
    )
    def test_validation(self, params, field, value):
        with pytest.raises(ValueError):
            params.with_updates(**{field: value})


class TestFinancingModel:
    def test_monthly_cost_combines_interest_and_depreciation(self):
        financing = FinancingModel(annual_interest_rate=0.12)
        monthly = financing.monthly_cost(1200.0, amortisation_years=10.0)
        assert monthly == pytest.approx(1200.0 * 0.01 + 1200.0 / 120.0)

    def test_interest_only_for_land(self):
        financing = FinancingModel(annual_interest_rate=0.0325)
        assert financing.monthly_interest_only(100_000.0) == pytest.approx(
            100_000.0 * 0.0325 / 12.0
        )

    def test_zero_interest(self):
        financing = FinancingModel(annual_interest_rate=0.0)
        assert financing.monthly_cost(120.0, 1.0) == pytest.approx(10.0)
        assert financing.monthly_interest_only(120.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FinancingModel(annual_interest_rate=-0.01)
        financing = FinancingModel()
        with pytest.raises(ValueError):
            financing.monthly_cost(-1.0, 10.0)
        with pytest.raises(ValueError):
            financing.monthly_cost(1.0, 0.0)
        with pytest.raises(ValueError):
            financing.monthly_interest_only(-5.0)


class TestCostModel:
    @pytest.fixture(scope="class")
    def cost_model(self, params):
        return CostModel(params)

    @pytest.fixture(scope="class")
    def profile(self, anchor_profiles):
        return anchor_profiles["Grissom, IN, USA"]

    def test_capex_independent_uses_distances(self, cost_model, profile, params):
        monthly = cost_model.capex_independent_monthly(profile)
        capital = (
            params.cost_line_power_per_km * profile.distance_power_km
            + params.cost_line_network_per_km * profile.distance_network_km
        )
        expected = CostModel(params).financing.monthly_cost(capital, 12.0)
        assert monthly == pytest.approx(expected)

    def test_it_equipment_cost_scale(self, cost_model):
        # ~86,000 servers at $2,000 plus switches, amortised over 4 years at 3.25%:
        # roughly $5-6M per month for a 25 MW datacenter.
        monthly = cost_model.it_equipment_monthly(25_000.0)
        assert 4e6 <= monthly <= 7e6

    def test_building_cost_small_vs_large(self, cost_model, profile):
        small = cost_model.building_dc_monthly(profile, 5_000.0, "small")
        large_price_same_size = cost_model.building_dc_monthly(profile, 5_000.0, "large")
        assert small > large_price_same_size

    def test_building_cost_auto_class(self, cost_model, profile):
        auto = cost_model.building_dc_monthly(profile, 25_000.0, "auto")
        large = cost_model.building_dc_monthly(profile, 25_000.0, "large")
        assert auto == pytest.approx(large)
        with pytest.raises(ValueError):
            cost_model.building_dc_monthly(profile, 25_000.0, "gigantic")

    def test_land_cost_is_interest_only(self, cost_model, profile, params):
        monthly = cost_model.land_monthly(profile, 25_000.0, 0.0, 0.0)
        capital = profile.land_price_per_m2 * 25_000.0 * params.area_dc_m2_per_kw
        assert monthly == pytest.approx(capital * params.annual_interest_rate / 12.0)

    def test_wind_cheaper_than_solar_per_kw(self, cost_model):
        assert cost_model.building_wind_monthly(1000.0) < cost_model.building_solar_monthly(1000.0)

    def test_battery_monthly(self, cost_model, params):
        monthly = cost_model.battery_monthly(1000.0)
        capital = 1000.0 * params.price_battery_per_kwh
        assert monthly == pytest.approx(
            capital * (params.annual_interest_rate / 12.0 + 1.0 / (4.0 * 12.0))
        )

    def test_brown_energy_cost_with_net_metering_credit(self, cost_model, profile):
        epochs = profile.epochs.num_epochs
        brown = np.full(epochs, 1000.0)
        pushed = np.full(epochs, 500.0)
        drawn = np.full(epochs, 500.0)
        with_credit = cost_model.brown_energy_monthly(profile, brown, drawn, pushed)
        without_storage = cost_model.brown_energy_monthly(profile, brown)
        # With a 100% credit the banked-and-drawn energy nets out.
        assert with_credit == pytest.approx(without_storage)

    def test_brown_energy_cost_shape_mismatch(self, cost_model, profile):
        with pytest.raises(ValueError):
            cost_model.brown_energy_monthly(profile, np.array([1.0, 2.0]))

    def test_opex_combines_bandwidth_and_energy(self, cost_model, profile):
        epochs = profile.epochs.num_epochs
        brown = np.zeros(epochs)
        opex = cost_model.opex_monthly(profile, 25_000.0, brown)
        assert opex == pytest.approx(cost_model.network_bandwidth_monthly(25_000.0))

    def test_linear_coefficients_match_explicit_costs(self, cost_model, profile, params):
        """The optimiser's objective coefficients must agree with the explicit model."""
        coefficients = cost_model.linear_coefficients(profile, "large")
        capacity, solar, wind, battery = 25_000.0, 40_000.0, 60_000.0, 5_000.0
        explicit = (
            cost_model.land_monthly(profile, capacity, solar, wind)
            + cost_model.building_dc_monthly(profile, capacity, "large")
            + cost_model.building_solar_monthly(solar)
            + cost_model.building_wind_monthly(wind)
            + cost_model.it_equipment_monthly(capacity)
            + cost_model.battery_monthly(battery)
            + cost_model.network_bandwidth_monthly(capacity)
        )
        linear = (
            coefficients["capacity_kw"] * capacity
            + coefficients["solar_kw"] * solar
            + coefficients["wind_kw"] * wind
            + coefficients["battery_kwh"] * battery
        )
        assert linear == pytest.approx(explicit, rel=1e-9)

    def test_linear_brown_coefficient(self, cost_model, profile):
        coefficients = cost_model.linear_coefficients(profile, "large")
        assert coefficients["brown_kwh_year"] == pytest.approx(
            profile.energy_price_per_kwh / 12.0
        )
        assert coefficients["net_charge_kwh_year"] == pytest.approx(
            -profile.energy_price_per_kwh / 12.0
        )
