"""Tests for the adaptive epoch-grid scheme.

Covers the :class:`~repro.energy.profiles.RefinedEpochGrid` container, the
coarsening helpers, the :class:`~repro.core.adaptive_grid.AdaptiveGridRefiner`
convergence guarantee (the refined objective lands within tolerance of the
fine-grid objective — checked on the fig06 and table2 scenario
configurations, as the ISSUE requires), and the heuristic integration via
``SearchSettings.coarse_epoch_factor``.
"""

import numpy as np
import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SitingProblem,
    StorageMode,
    solve_provisioning,
)
from repro.core.adaptive_grid import AdaptiveGridRefiner, can_coarsen, coarsen_problem
from repro.core.tool import PlacementTool
from repro.energy import EpochGrid, RefinedEpochGrid
from repro.scenarios import get_scenario


class TestRefinedEpochGrid:
    def test_uniform_pattern_matches_plain_grid(self):
        plain = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)
        refined = RefinedEpochGrid(
            representative_days=plain.representative_days,
            day_patterns=tuple([(3,) * 8] * 4),
        )
        assert refined.num_epochs == plain.num_epochs
        np.testing.assert_allclose(
            refined.epoch_weights_hours(), plain.epoch_weights_hours()
        )
        hourly = np.arange(8760, dtype=float)
        np.testing.assert_allclose(refined.aggregate(hourly), plain.aggregate(hourly))

    def test_non_uniform_weights_sum_to_year(self):
        grid = RefinedEpochGrid(
            representative_days=(15, 196),
            day_patterns=((6, 6, 1, 1, 1, 1, 1, 1, 6), (12, 6, 6)),
        )
        assert grid.num_epochs == 9 + 3
        assert grid.epoch_weights_hours().sum() == pytest.approx(8760.0)

    def test_aggregate_non_uniform(self):
        grid = RefinedEpochGrid(representative_days=(0,), day_patterns=((12, 6, 6),))
        hourly = np.zeros(8760)
        hourly[:24] = np.arange(24, dtype=float)
        expected = [np.mean(range(12)), np.mean(range(12, 18)), np.mean(range(18, 24))]
        np.testing.assert_allclose(grid.aggregate(hourly), expected)

    @pytest.mark.parametrize(
        "days,patterns",
        [
            ((0,), ((12, 6),)),           # does not sum to 24
            ((0, 1), ((24,),)),           # pattern count mismatch
            ((0,), ((23.5, 0.5),)),       # fractional hours
            ((400,), ((24,),)),           # day outside the year
        ],
    )
    def test_validation(self, days, patterns):
        with pytest.raises(ValueError):
            RefinedEpochGrid(representative_days=days, day_patterns=patterns)

    def test_epoch_index_matches_uniform_grid(self):
        """The emulation-time hour->epoch mapping agrees with EpochGrid."""
        plain = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)
        refined = RefinedEpochGrid(
            representative_days=plain.representative_days,
            day_patterns=tuple([(3,) * 8] * 4),
        )
        for hour in (0.0, 2.9, 3.0, 25.5, 95.0, 96.0, 1000.25):
            assert refined.epoch_index(hour) == plain.epoch_index(hour)

    def test_epoch_index_non_uniform(self):
        grid = RefinedEpochGrid(representative_days=(0,), day_patterns=((12, 6, 6),))
        assert grid.epoch_index(0.0) == 0
        assert grid.epoch_index(11.9) == 0
        assert grid.epoch_index(12.0) == 1
        assert grid.epoch_index(18.0) == 2
        assert grid.epoch_index(24.0) == 0  # wraps cyclically


class TestCoarsening:
    def test_can_coarsen(self, epoch_grid):
        assert can_coarsen(epoch_grid, 2)
        assert can_coarsen(epoch_grid, 4)
        assert not can_coarsen(epoch_grid, 1)
        assert not can_coarsen(epoch_grid, 3)  # 3 does not divide 8 epochs/day
        refined = RefinedEpochGrid(
            representative_days=(0,), day_patterns=((12, 6, 6),)
        )
        assert not can_coarsen(refined, 2)

    def test_coarsen_preserves_annual_energy(self, two_site_problem):
        coarse = coarsen_problem(two_site_problem, 2)
        assert coarse.num_epochs == two_site_problem.num_epochs // 2
        for fine_p, coarse_p in zip(two_site_problem.profiles, coarse.profiles):
            for series in ("solar_alpha", "wind_beta", "pue"):
                assert getattr(coarse_p, series).mean() == pytest.approx(
                    getattr(fine_p, series).mean()
                )

    def test_coarsen_rejects_bad_factor(self, two_site_problem):
        with pytest.raises(ValueError):
            coarsen_problem(two_site_problem, 3)


class TestAdaptiveRefinement:
    @pytest.mark.parametrize("storage", [StorageMode.NET_METERING, StorageMode.BATTERIES])
    def test_refined_objective_matches_fine_grid(self, two_site_problem, storage):
        problem = two_site_problem.with_updates(storage=storage)
        siting = {profile.name: "large" for profile in problem.profiles}
        fine = solve_provisioning(problem, siting)
        refiner = AdaptiveGridRefiner(problem, factor=4, tolerance=0.002)
        result, report = refiner.refine(siting)
        assert result.feasible and fine.feasible
        assert report.converged
        assert result.monthly_cost == pytest.approx(fine.monthly_cost, rel=0.01)
        # The objective trace starts on the coarse grid and ends near fine.
        assert report.num_epochs_trace[0] == problem.num_epochs // 4
        assert report.num_epochs_trace[-1] <= problem.num_epochs

    def test_max_rounds_exhaustion_falls_back_to_fine_solve(self, two_site_problem):
        """A budget too small to converge must still report the fine cost."""
        siting = {profile.name: "large" for profile in two_site_problem.profiles}
        fine = solve_provisioning(two_site_problem, siting)
        refiner = AdaptiveGridRefiner(
            two_site_problem, factor=4, tolerance=0.0, max_rounds=1
        )
        result, report = refiner.refine(siting)
        assert result.feasible
        assert report.converged
        assert report.num_epochs_trace[-1] == two_site_problem.num_epochs
        assert result.monthly_cost == pytest.approx(fine.monthly_cost, rel=1e-9)

    def test_no_storage_refines_to_fine_grid(self, two_site_problem):
        """No-storage plans have no bound epochs, yet averaging still moves
        the per-epoch power-balance/green constraints — the refiner must
        finish at full resolution instead of trusting the coarse objective."""
        problem = two_site_problem.with_updates(storage=StorageMode.NONE)
        problem = problem.with_updates(
            params=problem.params.with_updates(min_green_fraction=0.3)
        )
        siting = {profile.name: "large" for profile in problem.profiles}
        fine = solve_provisioning(problem, siting)
        if not fine.feasible:
            pytest.skip("no-storage two-site instance infeasible")
        refiner = AdaptiveGridRefiner(problem, factor=4, tolerance=0.002)
        result, report = refiner.refine(siting)
        assert result.feasible
        assert report.converged
        assert report.num_epochs_trace[-1] == problem.num_epochs
        assert result.monthly_cost == pytest.approx(fine.monthly_cost, rel=1e-9)

    def test_heuristic_adaptive_within_tolerance_of_plain(self, all_profiles, params):
        problem = SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        base = dict(keep_locations=6, max_iterations=10, patience=6, num_chains=1, seed=1)
        plain = HeuristicSolver(problem, SearchSettings(**base)).solve()
        adaptive = HeuristicSolver(
            problem, SearchSettings(**base, coarse_epoch_factor=2)
        ).solve()
        assert plain.feasible and adaptive.feasible
        assert adaptive.monthly_cost == pytest.approx(plain.monthly_cost, rel=0.02)
        assert adaptive.stats["coarse_epoch_factor"] == 2.0
        assert adaptive.stats["refine_rounds"] >= 1.0

    def test_incompatible_grid_falls_back_to_plain_search(self, all_profiles, params):
        problem = SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )
        settings = SearchSettings(
            keep_locations=6, max_iterations=6, patience=4, num_chains=1, seed=1,
            coarse_epoch_factor=3,  # 3 does not divide the 8 epochs/day
        )
        solution = HeuristicSolver(problem, settings).solve()
        assert solution.feasible
        assert "coarse_epoch_factor" not in solution.stats


class TestPaperScenarios:
    """The ISSUE's acceptance check: adaptive vs fine on fig06/table2 configs.

    The scenario registry's specs are used at a reduced candidate count (the
    catalogue is expensive to synthesise in tier-1); the scenario *switches*
    — 25 MW single-site service, storage, sources, green fraction — are the
    registered ones.
    """

    def _single_site_problem(self, scenario_name, point_index, num_locations=24):
        sweep = get_scenario(scenario_name).build()
        spec = sweep.points()[point_index].spec.with_updates(
            num_locations=num_locations
        )
        tool = PlacementTool.from_spec(spec)
        return tool, spec

    @pytest.mark.parametrize("scenario,point", [("fig06", 1), ("table2", 3)])
    def test_adaptive_within_tolerance_of_fine(self, scenario, point):
        tool, spec = self._single_site_problem(scenario, point)
        problem = tool.build_problem(
            total_capacity_kw=spec.total_capacity_kw,
            min_green_fraction=spec.min_green_fraction,
            sources=spec.sources_enum,
            storage=spec.storage_enum,
            migration_factor=spec.migration_factor,
            net_meter_credit=spec.net_meter_credit,
            min_availability=spec.min_availability,
            green_enforcement=spec.green_enforcement_enum,
        )
        name = problem.profiles[0].name
        siting = {name: "large"}
        fine = solve_provisioning(problem, siting, enforce_spread=False)
        if not fine.feasible:
            pytest.skip(f"{scenario} point {name} infeasible at test scale")
        refiner = AdaptiveGridRefiner(problem, factor=4, tolerance=0.002)
        result, report = refiner.refine(siting, enforce_spread=False)
        assert result.feasible
        assert report.converged
        assert result.monthly_cost == pytest.approx(fine.monthly_cost, rel=0.01)


class TestSearchSettingsSpecRoundTrip:
    def test_adaptive_settings_flow_through_scenario_spec(self):
        sweep = get_scenario("sec3d").build()
        settings = sweep.base.build_search_settings()
        assert settings.coarse_epoch_factor == 4
        # Round-trip through the serialised form preserves the search dict.
        from repro.scenarios import ScenarioSpec

        restored = ScenarioSpec.from_json(sweep.base.to_json())
        assert restored.build_search_settings().coarse_epoch_factor == 4
