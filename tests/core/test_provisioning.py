"""Tests for the fixed-siting provisioning LP (the heart of the heuristic)."""

import numpy as np
import pytest

from repro.core import (
    EnergySources,
    SitingProblem,
    StorageMode,
    solve_provisioning,
)
from repro.core.provisioning import ProvisioningModelBuilder, cheapest_size_classes


@pytest.fixture(scope="module")
def siting():
    return {"Mount Washington, NH, USA": "large", "Grissom, IN, USA": "large"}


@pytest.fixture(scope="module")
def solved(two_site_problem, siting):
    return solve_provisioning(two_site_problem, siting)


class TestFeasibilityAndStructure:
    def test_solves_to_feasible_plan(self, solved):
        assert solved.feasible
        assert solved.plan is not None
        assert solved.monthly_cost > 0

    def test_plan_has_both_datacenters(self, solved, siting):
        assert {dc.name for dc in solved.plan.datacenters} == set(siting)

    def test_unknown_location_rejected(self, two_site_problem):
        with pytest.raises(KeyError):
            solve_provisioning(two_site_problem, {"Atlantis": "small"})

    def test_empty_siting_rejected(self, two_site_problem):
        with pytest.raises(ValueError):
            solve_provisioning(two_site_problem, {})

    def test_bad_size_class_rejected(self, two_site_problem):
        with pytest.raises(ValueError):
            solve_provisioning(two_site_problem, {"Grissom, IN, USA": "medium"})


class TestPaperConstraints:
    def test_total_capacity_met_every_epoch(self, solved, two_site_problem):
        total = np.zeros(two_site_problem.num_epochs)
        for dc in solved.plan.datacenters:
            total += dc.compute_power_kw
        assert np.all(total >= two_site_problem.params.total_capacity_kw - 1e-3)

    def test_capacity_covers_compute_plus_migration(self, solved):
        for dc in solved.plan.datacenters:
            assert np.all(dc.compute_power_kw + dc.migrate_power_kw <= dc.capacity_kw + 1e-3)

    def test_green_fraction_requirement_met(self, solved, two_site_problem):
        assert solved.plan.green_fraction >= two_site_problem.params.min_green_fraction - 1e-3

    def test_green_delivery_never_exceeds_demand(self, solved):
        for dc in solved.plan.datacenters:
            delivered = dc.green_direct_kw + dc.battery_discharge_kw + dc.net_discharge_kw
            assert np.all(delivered <= dc.power_demand_kw + 1e-3)

    def test_green_allocation_never_exceeds_production(self, solved):
        for dc in solved.plan.datacenters:
            production = (
                dc.profile.solar_alpha * dc.solar_kw + dc.profile.wind_beta * dc.wind_kw
            )
            allocated = dc.green_direct_kw + dc.battery_charge_kw + dc.net_charge_kw
            assert np.all(allocated <= production + 1e-3)

    def test_power_balance_holds(self, solved):
        for dc in solved.plan.datacenters:
            supply = (
                dc.green_direct_kw
                + dc.battery_discharge_kw
                + dc.net_discharge_kw
                + dc.brown_power_kw
            )
            assert np.all(supply >= dc.power_demand_kw - 1e-3)

    def test_brown_power_capped_by_near_plant(self, solved, two_site_problem):
        fraction = two_site_problem.params.brown_plant_cap_fraction
        for dc in solved.plan.datacenters:
            cap = fraction * dc.profile.near_plant_capacity_kw
            assert np.all(dc.brown_power_kw <= cap + 1e-3)

    def test_availability_spread_enforced(self, solved, two_site_problem):
        floor = two_site_problem.params.total_capacity_kw / len(solved.plan.datacenters)
        for dc in solved.plan.datacenters:
            assert dc.capacity_kw >= floor - 1e-3

    def test_migration_definition(self, solved):
        """migratePow(t) >= compPow(t-1) - compPow(t), cyclically."""
        for dc in solved.plan.datacenters:
            compute = dc.compute_power_kw
            migrate = dc.migrate_power_kw
            previous = np.roll(compute, 1)
            assert np.all(migrate >= previous - compute - 1e-3)
            assert np.all(migrate >= -1e-9)


class TestStorageModes:
    def test_no_storage_forces_zero_storage_series(self, two_site_problem, siting):
        problem = two_site_problem.with_updates(storage=StorageMode.NONE)
        result = solve_provisioning(problem, siting)
        assert result.feasible
        for dc in result.plan.datacenters:
            assert np.all(dc.net_charge_kw == 0.0)
            assert np.all(dc.battery_charge_kw == 0.0)
            assert dc.battery_kwh == 0.0

    def test_batteries_mode_builds_batteries_when_needed(self, two_site_problem, siting):
        problem = two_site_problem.with_updates(
            params=two_site_problem.params.with_updates(min_green_fraction=1.0),
            storage=StorageMode.BATTERIES,
        )
        result = solve_provisioning(problem, siting)
        assert result.feasible
        assert result.plan.total_battery_kwh > 0
        for dc in result.plan.datacenters:
            assert np.all(dc.net_charge_kw == 0.0)

    def test_net_metering_cheaper_than_no_storage_at_100_percent_green(
        self, two_site_problem, siting
    ):
        hundred = two_site_problem.params.with_updates(min_green_fraction=1.0)
        with_net = solve_provisioning(
            two_site_problem.with_updates(params=hundred, storage=StorageMode.NET_METERING), siting
        )
        without = solve_provisioning(
            two_site_problem.with_updates(params=hundred, storage=StorageMode.NONE), siting
        )
        assert with_net.feasible and without.feasible
        assert with_net.monthly_cost < without.monthly_cost

    def test_battery_level_dynamics_consistent(self, two_site_problem, siting):
        problem = two_site_problem.with_updates(
            params=two_site_problem.params.with_updates(min_green_fraction=1.0),
            storage=StorageMode.BATTERIES,
        )
        result = solve_provisioning(problem, siting)
        epoch_hours = problem.epochs.epoch_hours
        efficiency = problem.params.battery_efficiency
        for dc in result.plan.datacenters:
            # Over the cyclic year the energy stored must equal the energy drawn.
            stored = float(np.sum(efficiency * dc.battery_charge_kw * epoch_hours))
            drawn = float(np.sum(dc.battery_discharge_kw * epoch_hours))
            assert stored == pytest.approx(drawn, rel=1e-4, abs=1e-3)


class TestSourceRestrictions:
    def test_wind_only_builds_no_solar(self, two_site_problem, siting):
        problem = two_site_problem.with_updates(sources=EnergySources.WIND_ONLY)
        result = solve_provisioning(problem, siting)
        assert result.feasible
        assert result.plan.total_solar_kw == 0.0
        assert result.plan.total_wind_kw > 0.0

    def test_solar_only_builds_no_wind(self, two_site_problem, siting):
        problem = two_site_problem.with_updates(sources=EnergySources.SOLAR_ONLY)
        result = solve_provisioning(problem, siting)
        assert result.feasible
        assert result.plan.total_wind_kw == 0.0
        assert result.plan.total_solar_kw > 0.0

    def test_brown_only_when_no_green_required(self, anchor_profiles, params, siting):
        problem = SitingProblem(
            profiles=[
                anchor_profiles["Mount Washington, NH, USA"],
                anchor_profiles["Grissom, IN, USA"],
            ],
            params=params.with_updates(min_green_fraction=0.0, total_capacity_kw=50_000.0),
            sources=EnergySources.NONE,
        )
        result = solve_provisioning(problem, siting)
        assert result.feasible
        assert result.plan.total_solar_kw == 0.0
        assert result.plan.total_wind_kw == 0.0


class TestCostConsistency:
    def test_objective_matches_plan_cost(self, solved):
        """The LP objective and the explicit cost model must agree."""
        assert solved.plan.solver_info["objective"] == pytest.approx(
            solved.plan.total_monthly_cost, rel=1e-4
        )

    def test_small_class_respects_threshold(self, two_site_problem):
        problem = two_site_problem.with_updates(
            params=two_site_problem.params.with_updates(total_capacity_kw=12_000.0)
        )
        result = solve_provisioning(
            problem,
            {"Mount Washington, NH, USA": "small", "Grissom, IN, USA": "small"},
        )
        assert result.feasible
        for dc in result.plan.datacenters:
            assert dc.capacity_kw * dc.profile.max_pue <= problem.params.small_dc_threshold_kw + 1e-3

    def test_higher_green_requirement_costs_more(self, two_site_problem, siting):
        fifty = solve_provisioning(two_site_problem, siting)
        hundred = solve_provisioning(
            two_site_problem.with_updates(
                params=two_site_problem.params.with_updates(min_green_fraction=1.0)
            ),
            siting,
        )
        assert hundred.monthly_cost >= fifty.monthly_cost - 1e-6

    def test_cheapest_size_classes_helper(self, two_site_problem):
        names = [p.name for p in two_site_problem.profiles]
        classes = cheapest_size_classes(two_site_problem, names)
        assert set(classes.values()) == {"large"}
        assert cheapest_size_classes(two_site_problem, []) == {}

    def test_builder_exposes_model_dimensions(self, two_site_problem, siting):
        builder = ProvisioningModelBuilder(two_site_problem, siting)
        assert builder.model.num_variables > 0
        assert builder.model.num_constraints > 0
        assert len(builder.sites) == 2
