"""Differential tests for the incremental (mutable-model) solve path.

The :class:`~repro.core.provisioning.IncrementalSitingEvaluator` expresses the
annealing search's add/remove/swap/resize moves as column+row deltas on one
persistent HiGHS model, with the previous optimal basis projected (or a
same-shape basis restored) across every delta.  These tests pin the
incremental path against the rebuild path — the differential oracle the
ISSUE asks for: a scripted move sequence must produce the same objectives
and the same extracted plans as from-scratch solves, for every storage mode
and green-enforcement variant.
"""

import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SitingProblem,
    StorageMode,
)
from repro.core.problem import GreenEnforcement
from repro.core.provisioning import IncrementalSitingEvaluator, ProvisioningCompiler
from repro.lpsolver import highs_backend

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)

SCENARIOS = [
    (StorageMode.NET_METERING, GreenEnforcement.ANNUAL),
    (StorageMode.NET_METERING, GreenEnforcement.PER_EPOCH),
    (StorageMode.BATTERIES, GreenEnforcement.ANNUAL),
    (StorageMode.NONE, GreenEnforcement.ANNUAL),
]


def _problem(all_profiles, params, storage, enforcement):
    green = 0.3 if storage is StorageMode.NONE else 0.5
    return SitingProblem(
        profiles=all_profiles,
        params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=green),
        sources=EnergySources.SOLAR_AND_WIND,
        storage=storage,
        green_enforcement=enforcement,
    )


def _scripted_moves(names):
    """Add, remove, swap, resize, a multi-site jump, and a return move."""
    return [
        {names[0]: "large", names[1]: "large"},
        {names[0]: "large", names[1]: "large", names[2]: "large"},   # add
        {names[0]: "large", names[2]: "large"},                      # remove
        {names[0]: "large", names[3]: "large"},                      # swap
        {names[0]: "large", names[3]: "small"},                      # resize
        {names[0]: "large", names[1]: "large", names[4]: "small", names[5]: "large"},
        {names[0]: "large", names[1]: "large"},                      # back: remove two
        {names[5]: "large", names[6]: "large", names[7]: "large"},   # full swap
        {names[0]: "large", names[1]: "large", names[2]: "large"},   # revisit a shape
    ]


def _plan_signature(plan):
    """Siting decision plus the plan's re-priced total, keyed comparably.

    Provisioning LPs are degenerate: warm- and cold-started simplex runs can
    land on *different optimal vertices* (identical objective, load shifted
    between epochs or sites), so per-epoch series are not comparable.  What
    must agree is the siting, the size classes, and the total monthly cost
    the cost model re-derives from each plan's series.
    """
    return (
        {dc.name: dc.size_class for dc in plan.datacenters},
        plan.total_monthly_cost,
    )


class TestIncrementalDifferential:
    @pytest.mark.parametrize("storage,enforcement", SCENARIOS)
    def test_scripted_moves_match_rebuild(self, all_profiles, params, storage, enforcement):
        problem = _problem(all_profiles, params, storage, enforcement)
        names = [profile.name for profile in problem.profiles]
        evaluator = IncrementalSitingEvaluator(ProvisioningCompiler(problem))
        for siting in _scripted_moves(names):
            incremental = evaluator.evaluate(siting)
            rebuilt = evaluator.rebuild(siting)
            assert incremental.feasible == rebuilt.feasible, siting
            if not incremental.feasible:
                continue
            # The LP optimum is unique in value: the warm-started objective
            # must equal the cold rebuild's bit-for-bit up to FP roundoff.
            assert incremental.monthly_cost == pytest.approx(
                rebuilt.monthly_cost, rel=1e-9
            )
            lhs_siting, lhs_total = _plan_signature(incremental.plan)
            rhs_siting, rhs_total = _plan_signature(rebuilt.plan)
            assert lhs_siting == rhs_siting
            assert lhs_total == pytest.approx(rhs_total, rel=1e-6)
            # Both vertices price back to the LP objective.
            assert lhs_total == pytest.approx(incremental.monthly_cost, rel=1e-6)

    def test_resize_only_moves_keep_carried_basis(self, all_profiles, params):
        """Pure value edits re-solve in a handful of simplex iterations."""
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        names = [profile.name for profile in problem.profiles]
        evaluator = IncrementalSitingEvaluator(ProvisioningCompiler(problem))
        base = {names[0]: "large", names[1]: "large", names[2]: "large"}
        first = evaluator.evaluate(base)
        assert first.feasible
        flipped = dict(base, **{names[2]: "small"})
        incremental = evaluator.evaluate(flipped)
        rebuilt = evaluator.rebuild(flipped)
        assert incremental.feasible == rebuilt.feasible
        if incremental.feasible:
            assert incremental.monthly_cost == pytest.approx(
                rebuilt.monthly_cost, rel=1e-9
            )

    def test_evaluator_rejects_empty_siting(self, all_profiles, params):
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        evaluator = IncrementalSitingEvaluator(ProvisioningCompiler(problem))
        with pytest.raises(ValueError):
            evaluator.evaluate({})


class TestHeuristicIncrementalEquivalence:
    def _solve(self, problem, incremental):
        settings = SearchSettings(
            keep_locations=8,
            max_iterations=14,
            patience=8,
            num_chains=2,
            seed=3,
            max_datacenters=4,
            incremental_lp=incremental,
        )
        return HeuristicSolver(problem, settings).solve()

    def test_search_results_match_rebuild_search(self, all_profiles, params):
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        incremental = self._solve(problem, incremental=True)
        rebuilt = self._solve(problem, incremental=False)
        assert incremental.feasible and rebuilt.feasible
        assert incremental.monthly_cost == pytest.approx(rebuilt.monthly_cost, rel=1e-9)
        assert incremental.evaluations == rebuilt.evaluations
        assert incremental.stats["incremental_lp"] == 1.0
        assert rebuilt.stats["incremental_lp"] == 0.0
        assert sorted(dc.name for dc in incremental.plan.datacenters) == sorted(
            dc.name for dc in rebuilt.plan.datacenters
        )


class TestMemoCanonicalisation:
    def test_move_order_reaches_same_entry(self, all_profiles, params, fast_settings):
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        solver = HeuristicSolver(problem, fast_settings)
        names = [profile.name for profile in problem.profiles]
        forward = solver.evaluate({names[0]: "large", names[1]: "large"})
        reordered = solver.evaluate({names[1]: "large", names[0]: "large"})
        assert reordered is forward
        assert solver.cache_hits == 1

    def test_cross_chain_hits_attributed(self, all_profiles, params):
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        solver = HeuristicSolver(problem, SearchSettings(keep_locations=6, seed=1))
        names = [profile.name for profile in problem.profiles]
        siting = {names[0]: "large", names[1]: "large"}
        solver.evaluate(siting, chain=0)
        solver.evaluate(dict(siting), chain=0)   # same chain: plain hit
        solver.evaluate(dict(siting), chain=1)   # other chain: cross-chain hit
        assert solver.cache_hits == 2
        assert solver.cross_chain_hits == 1

    def test_stats_exposed_in_solution(self, all_profiles, params, fast_settings):
        problem = _problem(all_profiles, params, StorageMode.NET_METERING,
                           GreenEnforcement.ANNUAL)
        solution = HeuristicSolver(problem, fast_settings).solve()
        assert "memo_hit_rate" in solution.stats
        assert "memo_cross_chain_hits" in solution.stats
        requests = solution.evaluations + solution.cache_hits
        assert solution.stats["memo_hit_rate"] == pytest.approx(
            solution.cache_hits / requests
        )
