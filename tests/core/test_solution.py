"""Tests for the DatacenterPlan / NetworkPlan solution structures."""

import numpy as np
import pytest

from repro.core.solution import COST_COMPONENTS, DatacenterPlan, NetworkPlan


@pytest.fixture(scope="module")
def example_plan(case_study_plan):
    return case_study_plan


class TestDatacenterPlan:
    def test_series_lengths_validated(self, example_plan, params):
        dc = example_plan.datacenters[0]
        with pytest.raises(ValueError):
            DatacenterPlan(
                profile=dc.profile,
                size_class="large",
                capacity_kw=1000.0,
                solar_kw=0.0,
                wind_kw=0.0,
                battery_kwh=0.0,
                monthly_costs={"building_dc": 1.0},
                compute_power_kw=np.zeros(3),
                migrate_power_kw=np.zeros(3),
                brown_power_kw=np.zeros(3),
                green_direct_kw=np.zeros(3),
                battery_charge_kw=np.zeros(3),
                battery_discharge_kw=np.zeros(3),
                net_charge_kw=np.zeros(3),
                net_discharge_kw=np.zeros(3),
            )

    def test_unknown_cost_component_rejected(self, example_plan):
        dc = example_plan.datacenters[0]
        epochs = dc.profile.epochs.num_epochs
        zeros = np.zeros(epochs)
        with pytest.raises(ValueError):
            DatacenterPlan(
                profile=dc.profile,
                size_class="large",
                capacity_kw=1000.0,
                solar_kw=0.0,
                wind_kw=0.0,
                battery_kwh=0.0,
                monthly_costs={"lobbying": 1.0},
                compute_power_kw=zeros,
                migrate_power_kw=zeros,
                brown_power_kw=zeros,
                green_direct_kw=zeros,
                battery_charge_kw=zeros,
                battery_discharge_kw=zeros,
                net_charge_kw=zeros,
                net_discharge_kw=zeros,
            )

    def test_total_monthly_cost_sums_components(self, example_plan):
        dc = example_plan.datacenters[0]
        assert dc.total_monthly_cost == pytest.approx(sum(dc.monthly_costs.values()))

    def test_power_demand_uses_pue(self, example_plan):
        dc = example_plan.datacenters[0]
        expected = (dc.compute_power_kw + dc.migrate_power_kw) * dc.profile.pue
        np.testing.assert_allclose(dc.power_demand_kw, expected)

    def test_energy_accounting_consistent(self, example_plan):
        for dc in example_plan.datacenters:
            assert dc.demand_energy_kwh_year > 0
            assert dc.green_energy_kwh_year >= 0
            assert dc.brown_energy_kwh_year >= 0
            # Supply covers demand over the year.
            assert (
                dc.green_energy_kwh_year + dc.brown_energy_kwh_year
                >= dc.demand_energy_kwh_year - 1.0
            )

    def test_green_production_at_least_green_used_without_storage_losses(self, example_plan):
        for dc in example_plan.datacenters:
            if dc.battery_kwh == 0.0:
                # With net metering only, green used cannot exceed production.
                assert dc.green_energy_kwh_year <= dc.green_production_kwh_year + 1.0

    def test_summary_keys(self, example_plan):
        summary = example_plan.datacenters[0].summary()
        assert {"capacity_kw", "solar_kw", "wind_kw", "monthly_cost"} <= set(summary)


class TestNetworkPlan:
    def test_requires_datacenters(self, params):
        with pytest.raises(ValueError):
            NetworkPlan(datacenters=[], params=params)

    def test_duplicate_datacenters_rejected(self, example_plan, params):
        dc = example_plan.datacenters[0]
        with pytest.raises(ValueError):
            NetworkPlan(datacenters=[dc, dc], params=params)

    def test_aggregates(self, example_plan):
        assert example_plan.total_capacity_kw == pytest.approx(
            sum(dc.capacity_kw for dc in example_plan.datacenters)
        )
        assert example_plan.total_monthly_cost == pytest.approx(
            sum(dc.total_monthly_cost for dc in example_plan.datacenters)
        )
        assert 0.0 <= example_plan.green_fraction <= 1.0

    def test_cost_breakdown_covers_total(self, example_plan):
        breakdown = example_plan.cost_breakdown()
        assert set(breakdown) == set(COST_COMPONENTS)
        assert sum(breakdown.values()) == pytest.approx(example_plan.total_monthly_cost)

    def test_datacenter_lookup(self, example_plan):
        name = example_plan.datacenters[0].name
        assert example_plan.datacenter(name).name == name
        with pytest.raises(KeyError):
            example_plan.datacenter("nowhere")

    def test_describe_mentions_each_datacenter(self, example_plan):
        text = example_plan.describe()
        for dc in example_plan.datacenters:
            assert dc.name in text

    def test_summary_keys(self, example_plan):
        summary = example_plan.summary()
        assert {
            "num_datacenters",
            "monthly_cost",
            "capacity_kw",
            "green_fraction",
            "availability",
        } <= set(summary)
