"""Artifact-cache correctness: code fingerprints, cache keys, CLI management.

The stale-artifact bug under test: artifacts used to be keyed by spec content
hash alone, so a solver-semantics change silently replayed numbers the old
code produced.  Version-2 artifacts carry a code fingerprint that must match
the running code on load.
"""

import json


from repro.cli import main
from repro.scenarios import ExperimentRunner, ScenarioSpec
from repro.scenarios.runner import ARTIFACT_SCHEMA_VERSION, clear_artifact_cache
from repro.scenarios.spec import code_fingerprint

TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )
    return spec.with_updates(**overrides) if overrides else spec


class TestFingerprintedArtifacts:
    def test_stored_artifact_carries_schema_and_fingerprint(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        [artifact] = list(tmp_path.glob("point-*.json"))
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert payload["fingerprint"] == code_fingerprint()
        assert "point" in payload

    def test_mismatched_fingerprint_is_recomputed(self, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        [artifact] = list(tmp_path.glob("point-*.json"))
        payload = json.loads(artifact.read_text())
        payload["fingerprint"]["package_version"] = "0.0.0-older-solver"
        artifact.write_text(json.dumps(payload))

        fresh = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert not fresh.from_cache  # rejected, recomputed
        assert fresh.record == first.record
        # The rewrite stamps the current fingerprint back onto disk.
        stored = json.loads(artifact.read_text())
        assert stored["fingerprint"] == code_fingerprint()

    def test_old_schema_is_recomputed(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        [artifact] = list(tmp_path.glob("point-*.json"))
        payload = json.loads(artifact.read_text())
        payload["schema_version"] = 1
        artifact.write_text(json.dumps(payload))
        assert not ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec()).from_cache


class TestExecutionKnobsOutsideTheCacheKey:
    def test_executor_and_workers_do_not_change_the_hash(self):
        base = tiny_spec()
        assert (
            base.content_hash()
            == tiny_spec(**{"search.executor": "process"}).content_hash()
            == tiny_spec(**{"search.max_workers": 8}).content_hash()
        )
        # Semantic search knobs still invalidate.
        assert base.content_hash() != tiny_spec(**{"search.seed": 4}).content_hash()

    def test_process_run_hits_serial_artifacts(self, tmp_path):
        serial = ExperimentRunner(cache_dir=tmp_path, executor="serial")
        serial.run_point(tiny_spec())
        process = ExperimentRunner(cache_dir=tmp_path, workers=2, executor="process")
        point = process.run_point(tiny_spec(**{"search.executor": "process"}))
        assert point.from_cache


class TestCacheManagement:
    def test_clear_removes_only_artifacts(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        bystander = tmp_path / "notes.txt"
        bystander.write_text("keep me")
        assert clear_artifact_cache(tmp_path) == 1
        assert not list(tmp_path.glob("point-*.json"))
        assert bystander.exists()
        assert clear_artifact_cache(tmp_path) == 0
        assert clear_artifact_cache(tmp_path / "missing") == 0

    def test_cli_cache_info_and_clear(self, tmp_path, capsys):
        ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stored points : 1" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 cached points" in capsys.readouterr().out
        assert not list(tmp_path.glob("point-*.json"))

    def test_cli_sweep_no_cache_writes_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        code = main(
            [
                "sweep",
                "--scenario",
                "smoke",
                "--no-cache",
                "--cache-dir",
                str(cache_dir),
                "--json",
            ]
        )
        assert code == 0
        assert not cache_dir.exists()
