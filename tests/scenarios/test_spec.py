"""Tests for ScenarioSpec serialization, hashing and sweep expansion."""

import pytest

from repro.core import EnergySources, GreenEnforcement, StorageMode
from repro.core.heuristic import SearchSettings
from repro.scenarios import ParameterSweep, ScenarioSpec, build_sweep, get_scenario, scenario_names


class TestScenarioSpecValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.workflow == "plan"
        assert spec.sources_enum is EnergySources.SOLAR_AND_WIND
        assert spec.storage_enum is StorageMode.NET_METERING
        assert spec.green_enforcement_enum is GreenEnforcement.ANNUAL

    def test_unknown_workflow_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(workflow="simulate")

    def test_unknown_enum_values_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(sources="coal")
        with pytest.raises(ValueError):
            ScenarioSpec(storage="flywheel")
        with pytest.raises(ValueError):
            ScenarioSpec(green_enforcement="monthly")

    def test_unknown_emulation_knob_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(workflow="emulate", emulation={"warp_factor": 9})

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(total_capacity_kw=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(min_green_fraction=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(num_locations=0)


class TestRoundTrip:
    def make_spec(self):
        return ScenarioSpec(
            name="round-trip",
            description="a fully loaded spec",
            workflow="plan",
            num_locations=42,
            catalog_seed=7,
            candidate_names=("Kiev, Ukraine", "Harare, Zimbabwe"),
            days_per_season=2,
            hours_per_epoch=6,
            total_capacity_kw=30_000.0,
            min_green_fraction=0.75,
            sources="wind",
            storage="batteries",
            green_enforcement="per_epoch",
            migration_factor=0.5,
            net_meter_credit=0.25,
            min_availability=0.999,
            param_overrides={"price_battery_per_kwh": 150.0},
            search={"seed": 3, "max_iterations": 9},
            emulation={"num_vms": 4, "sites": ("Harare, Zimbabwe",)},
        )

    def test_dict_round_trip(self):
        spec = self.make_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_preserves_hash(self):
        spec = self.make_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(KeyError):
            ScenarioSpec.from_dict({"min_green_fractoin": 0.5})

    def test_tuples_survive_list_form(self):
        spec = self.make_spec()
        payload = spec.to_dict()
        assert isinstance(payload["candidate_names"], list)
        assert isinstance(payload["emulation"]["sites"], list)
        restored = ScenarioSpec.from_dict(payload)
        assert restored.candidate_names == spec.candidate_names
        assert restored.emulation["sites"] == spec.emulation["sites"]


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        assert ScenarioSpec().content_hash() == ScenarioSpec().content_hash()

    def test_hash_ignores_identity_fields(self):
        assert (
            ScenarioSpec(name="a", description="x").content_hash()
            == ScenarioSpec(name="b", description="y").content_hash()
        )

    def test_hash_changes_with_semantics(self):
        base = ScenarioSpec()
        assert base.content_hash() != base.with_updates(min_green_fraction=0.75).content_hash()
        assert base.content_hash() != base.with_updates(search={"seed": 5}).content_hash()
        assert base.content_hash() != base.with_updates(num_locations=91).content_hash()

    def test_zero_green_specs_collapse_across_sources(self):
        # A 0 %-green scenario prices the same brown network whatever sources
        # are allowed: all its variants share a canonical form and a hash.
        hashes = {
            ScenarioSpec(min_green_fraction=0.0, sources=value).content_hash()
            for value in ("solar", "wind", "solar+wind", "brown")
        }
        assert len(hashes) == 1

    def test_problem_signature_ignores_search(self):
        base = ScenarioSpec()
        assert (
            base.problem_signature()
            == base.with_updates(search={"seed": 99}).problem_signature()
        )
        assert base.problem_signature() != base.with_updates(storage="none").problem_signature()


class TestWithUpdates:
    def test_flat_update(self):
        spec = ScenarioSpec().with_updates(storage="none", min_green_fraction=1.0)
        assert spec.storage_enum is StorageMode.NONE
        assert spec.min_green_fraction == 1.0

    def test_dotted_update_merges_dict_fields(self):
        spec = ScenarioSpec(search={"seed": 1, "num_chains": 2})
        updated = spec.with_updates(**{"search.seed": 5, "emulation.num_vms": 3})
        assert updated.search == {"seed": 1, "num_chains": 2} | {"seed": 5}
        assert updated.emulation == {"num_vms": 3}
        # the original is untouched
        assert spec.search["seed"] == 1

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            ScenarioSpec().with_updates(capacity=1.0)
        with pytest.raises(KeyError):
            ScenarioSpec().with_updates(**{"storage.mode": "none"})

    def test_build_search_settings(self):
        spec = ScenarioSpec(search={"max_iterations": 7, "seed": 11})
        settings = spec.build_search_settings()
        assert isinstance(settings, SearchSettings)
        assert settings.max_iterations == 7 and settings.seed == 11


class TestContingencyBlock:
    def test_empty_block_is_hash_invisible(self):
        assert ScenarioSpec(contingency={}).content_hash() == ScenarioSpec().content_hash()
        assert ScenarioSpec(contingency={}).contingency_config() is None

    def test_non_empty_block_changes_the_hash(self):
        base = ScenarioSpec()
        hardened = ScenarioSpec(contingency={"survivability_epsilon": 0.05})
        assert hardened.content_hash() != base.content_hash()

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(contingency={"epsilon": 0.05})

    def test_config_round_trips_knobs(self):
        spec = ScenarioSpec(
            contingency={
                "survivability_epsilon": 0.02,
                "outage_start_step": 4,
                "outage_duration_steps": 6,
            }
        )
        config = spec.contingency_config()
        assert config is not None
        assert config.survivability_epsilon == 0.02
        assert config.outage_start_step == 4
        assert config.outage_duration_steps == 6
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_dotted_override_reaches_contingency(self):
        spec = ScenarioSpec(contingency={"survivability_epsilon": 0.05})
        updated = spec.with_updates(**{"contingency.survivability_epsilon": 0.1})
        assert updated.contingency_config().survivability_epsilon == 0.1
        assert spec.contingency["survivability_epsilon"] == 0.05

    def test_problem_signature_ignores_contingency(self):
        base = ScenarioSpec()
        hardened = ScenarioSpec(contingency={"survivability_epsilon": 0.05})
        assert base.problem_signature() == hardened.problem_signature()

    def test_survivability_scenarios_registered(self):
        names = scenario_names()
        assert "contingency-fig06" in names
        assert "failover-smoke" in names
        smoke = build_sweep("failover-smoke").base
        assert smoke.workflow == "operate"
        assert smoke.contingency_config() is not None
        assert not smoke.fault_spec().is_empty


class TestParameterSweep:
    def test_no_axes_is_single_point(self):
        sweep = ParameterSweep(base=ScenarioSpec())
        points = sweep.points()
        assert len(points) == 1 and points[0].overrides == {}

    def test_cartesian_order(self):
        sweep = ParameterSweep(
            base=ScenarioSpec(),
            axes={"storage": ("none", "batteries"), "min_green_fraction": (0.5, 1.0)},
        )
        combos = [(p.overrides["storage"], p.overrides["min_green_fraction"]) for p in sweep.points()]
        assert combos == [("none", 0.5), ("none", 1.0), ("batteries", 0.5), ("batteries", 1.0)]

    def test_zip_mode(self):
        sweep = ParameterSweep(
            base=ScenarioSpec(),
            axes={"min_green_fraction": (0.0, 0.5), "sources": ("brown", "wind")},
            mode="zip",
        )
        points = sweep.points()
        assert len(points) == 2
        assert points[0].spec.sources == "brown" and points[1].spec.sources == "wind"

    def test_zip_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            ParameterSweep(
                base=ScenarioSpec(),
                axes={"min_green_fraction": (0.0,), "sources": ("brown", "wind")},
                mode="zip",
            )

    def test_dotted_axes_reach_search(self):
        sweep = ParameterSweep(base=ScenarioSpec(), axes={"search.seed": (1, 2)})
        seeds = [p.spec.search["seed"] for p in sweep.points()]
        assert seeds == [1, 2]


class TestRegistry:
    def test_paper_scenarios_registered(self):
        names = scenario_names()
        for expected in ("fig06", "fig08", "fig13", "table2", "table3", "fig15", "smoke"):
            assert expected in names

    def test_every_scenario_builds(self):
        for name in scenario_names():
            sweep = build_sweep(name)
            points = sweep.points()
            assert points, name
            for point in points:
                assert point.spec.workflow in ("plan", "single_site", "emulate", "operate")

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("fig99")

    def test_fig11_shares_fig08_points(self):
        # Figs. 11/12 are capacity views of the Figs. 8/10 sweeps: identical
        # content hashes mean the runner serves them from the same artifacts.
        fig08 = {p.spec.content_hash() for p in build_sweep("fig08").points()}
        fig11 = {p.spec.content_hash() for p in build_sweep("fig11").points()}
        assert fig08 == fig11
