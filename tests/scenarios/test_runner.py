"""Tests for the experiment runner: determinism, memoization, artifact cache."""

import json
import os

import pytest

from repro.scenarios import ExperimentRunner, ParameterSweep, ResultSet, ScenarioSpec

#: A deliberately tiny plan scenario so each point solves in well under a second.
TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )
    return spec.with_updates(**overrides) if overrides else spec


def tiny_sweep(**axes) -> ParameterSweep:
    axes = axes or {"min_green_fraction": (0.0, 0.5)}
    return ParameterSweep(base=tiny_spec(), axes=axes)


def comparable(results: ResultSet):
    return [(point.overrides, point.record) for point in results]


class TestPlanWorkflow:
    def test_single_point_record(self):
        point = ExperimentRunner().run_point(tiny_spec())
        assert point.record["workflow"] == "plan"
        assert point.record["feasible"]
        assert point.record["monthly_cost"] > 0
        assert point.record["num_datacenters"] >= 1
        assert point.solution is not None and point.solution.plan is not None
        # The record round-trips through JSON (it is what the cache stores).
        assert json.loads(json.dumps(point.record))["feasible"] is True

    def test_matches_direct_placement_tool(self):
        from repro.core import PlacementTool

        spec = tiny_spec(min_green_fraction=0.5)
        direct = PlacementTool.from_spec(spec).plan_spec(spec)
        point = ExperimentRunner().run_point(spec)
        assert point.record["monthly_cost"] == direct.monthly_cost
        assert point.record["evaluations"] == direct.evaluations

    def test_infeasible_point_is_recorded_not_raised(self):
        # A 100 % green, per-epoch requirement over one tiny candidate set can
        # fail; whatever happens it must produce a record, not an exception.
        spec = tiny_spec(
            min_green_fraction=1.0,
            green_enforcement="per_epoch",
            storage="none",
            candidate_names=("Kiev, Ukraine",),
        )
        point = ExperimentRunner().run_point(spec)
        assert point.record["workflow"] == "plan"
        assert isinstance(point.record["feasible"], bool)


class TestDeterminism:
    def test_identical_results_across_runs_and_workers(self):
        baseline = comparable(ExperimentRunner(workers=1).run(tiny_sweep()))
        for workers in (1, 3):
            results = ExperimentRunner(workers=workers).run(tiny_sweep())
            assert comparable(results) == baseline

    def test_memo_dedupes_equivalent_points(self):
        # All 0 %-green source variants canonicalise to the same brown
        # scenario: the runner must evaluate it once and reuse the result.
        runner = ExperimentRunner()
        sweep = ParameterSweep(
            base=tiny_spec(min_green_fraction=0.0),
            axes={"sources": ("wind", "solar", "solar+wind")},
        )
        results = runner.run(sweep)
        assert len(results) == 3
        records = [point.record for point in results]
        assert records[0] == records[1] == records[2]
        assert len(runner._memo) == 1

    def test_rerun_uses_in_memory_memo(self):
        runner = ExperimentRunner()
        first = runner.run(tiny_sweep())
        second = runner.run(tiny_sweep())
        assert comparable(first) == comparable(second)
        # Live solutions are shared, not recomputed.
        assert first[0].solution is second[0].solution

    def test_records_are_not_aliased_between_served_points(self):
        runner = ExperimentRunner()
        first = runner.run_point(tiny_spec())
        first.record["scribble"] = True
        second = runner.run_point(tiny_spec())
        assert "scribble" not in second.record

    def test_failed_point_is_not_memoized(self):
        runner = ExperimentRunner()
        bad = tiny_spec(candidate_names=("Nowhere, Atlantis",))
        with pytest.raises(KeyError):
            runner.run_point(bad)
        # The failure is not cached: the memo is clean for a retry.
        assert runner._memo == {}


class TestArtifactCache:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        first = ExperimentRunner(cache_dir=cache_dir).run(tiny_sweep())
        assert first.cache_hits == 0 and first.computed == 2
        assert len(list(cache_dir.glob("point-*.json"))) == 2

        second = ExperimentRunner(cache_dir=cache_dir).run(tiny_sweep())
        assert second.cache_hits == 2 and second.computed == 0
        assert [p.record for p in second] == [p.record for p in first]
        # Cache-served points carry no live solution, by design.
        assert all(point.solution is None for point in second)

    def test_changed_spec_misses_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run_point(tiny_spec())
        edited = ExperimentRunner(cache_dir=tmp_path).run_point(
            tiny_spec(**{"search.seed": 4})
        )
        assert not edited.from_cache

    def test_corrupt_artifact_is_recomputed(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        point = runner.run_point(tiny_spec())
        [artifact] = list(tmp_path.glob("point-*.json"))
        artifact.write_text("{not json")
        fresh = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert not fresh.from_cache
        assert fresh.record == point.record

    def test_cache_disabled_writes_nothing(self, tmp_path):
        ExperimentRunner(cache_dir=None).run_point(tiny_spec())
        assert not os.listdir(tmp_path)


class TestSingleSiteWorkflow:
    def test_records_per_location_rows(self):
        spec = tiny_spec(workflow="single_site", total_capacity_kw=25_000.0, sources="wind")
        point = ExperimentRunner().run_point(spec)
        record = point.record
        assert record["workflow"] == "single_site"
        assert record["num_locations"] == 12
        assert record["num_feasible"] >= 1
        assert len(record["locations"]) == 12
        row = record["locations"][0]
        assert {"location", "monthly_cost", "feasible", "monthly_cost_musd"} <= set(row)

    def test_matches_direct_analyzer(self):
        from repro.core import SingleSiteAnalyzer

        spec = tiny_spec(workflow="single_site", total_capacity_kw=25_000.0)
        runner = ExperimentRunner()
        tool = runner.tool_for(spec)
        direct = SingleSiteAnalyzer.from_spec(spec).cost_distribution(
            tool.profiles,
            capacity_kw=spec.total_capacity_kw,
            min_green_fraction=spec.min_green_fraction,
            sources=spec.sources_enum,
            storage=spec.storage_enum,
        )
        record = runner.run_point(spec).record
        assert [row["monthly_cost"] for row in record["locations"]] == [
            cost.monthly_cost for cost in direct
        ]


class TestEmulateWorkflow:
    def test_emulation_record(self):
        spec = ScenarioSpec(
            workflow="emulate",
            num_locations=20,
            catalog_seed=2014,
            hours_per_epoch=1,
            emulation={"seed": 7, "duration_hours": 4, "num_vms": 4},
        )
        point = ExperimentRunner().run_point(spec)
        record = point.record
        assert record["workflow"] == "emulate"
        assert record["total_hours"] == 4
        assert len(record["sites"]) == 3
        for name in record["sites"]:
            assert len(record["load_series"][name]) == 4
        # The live cloud rides along for trace-level inspection.
        assert point.solution is not None
        assert sum(dc.num_vms for dc in point.solution.datacenters) == 4


class TestRunnerSharedCaches:
    def test_profiles_shared_between_points(self):
        runner = ExperimentRunner()
        runner.run(tiny_sweep())
        assert len(runner._profiles) == 1
        assert len(runner._catalogs) == 1

    def test_problems_keyed_by_signature(self):
        runner = ExperimentRunner()
        runner.run(tiny_sweep(**{"search.seed": (3, 5)}))
        # Two points, same problem: one shared problem + compiler pair.
        assert len(runner._problems) == 1
        runner.run_point(tiny_spec(storage="none", min_green_fraction=1.0))
        assert len(runner._problems) == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(workers=0)
