"""A corrupt artifact is a cache miss, never a crash.

The failure under test: a truncated write (disk full, killed process) or a
hand-edited artifact used to raise out of ``_load_artifact`` and abort the
whole sweep.  Any unreadable artifact must instead be recomputed and the bad
file overwritten in place with a valid one.
"""

import json

import pytest

from repro.scenarios import ExperimentRunner, ScenarioSpec

TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )


def _seed_cache(tmp_path):
    first = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
    assert not first.from_cache
    [artifact] = list(tmp_path.glob("point-*.json"))
    return first, artifact


CORRUPTIONS = {
    "truncated": lambda text: text[: len(text) // 2],
    "not-json": lambda text: "this is not json{{{",
    "wrong-shape": lambda text: json.dumps(
        {**json.loads(text), "point": []}  # valid JSON, shape the loader rejects
    ),
    "empty": lambda text: "",
}


class TestCorruptArtifacts:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_corrupt_artifact_is_recomputed_and_healed(self, tmp_path, kind):
        first, artifact = _seed_cache(tmp_path)
        artifact.write_text(CORRUPTIONS[kind](artifact.read_text()))

        second = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert not second.from_cache  # corrupt entry treated as a miss
        assert second.record == first.record

        # The bad file was overwritten in place with a loadable artifact...
        json.loads(artifact.read_text())
        # ...so the next run is a clean cache hit again.
        third = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert third.from_cache
        assert third.record == first.record

    def test_intact_artifact_still_hits(self, tmp_path):
        first, _ = _seed_cache(tmp_path)
        again = ExperimentRunner(cache_dir=tmp_path).run_point(tiny_spec())
        assert again.from_cache
        assert again.record == first.record
