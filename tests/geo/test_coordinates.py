"""Tests for geographic coordinates and distances."""

import pytest

from repro.geo import GeoPoint, haversine_km, nearest_point
from repro.geo.coordinates import bounding_latitudes


class TestGeoPoint:
    def test_valid_point(self):
        point = GeoPoint(41.4, 2.2)
        assert point.latitude == pytest.approx(41.4)

    @pytest.mark.parametrize("latitude", [-91.0, 91.0])
    def test_invalid_latitude(self, latitude):
        with pytest.raises(ValueError):
            GeoPoint(latitude, 0.0)

    @pytest.mark.parametrize("longitude", [-181.0, 181.0])
    def test_invalid_longitude(self, longitude):
        with pytest.raises(ValueError):
            GeoPoint(0.0, longitude)


class TestHaversine:
    def test_zero_distance(self):
        point = GeoPoint(10.0, 20.0)
        assert haversine_km(point, point) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        a = GeoPoint(41.39, 2.17)   # Barcelona
        b = GeoPoint(40.52, -74.46)  # Piscataway
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_known_distance_barcelona_piscataway(self):
        a = GeoPoint(41.39, 2.17)
        b = GeoPoint(40.52, -74.46)
        # The trans-Atlantic link of the paper's validation is roughly 6200 km.
        assert 5800 <= haversine_km(a, b) <= 6600

    def test_quarter_circumference(self):
        equator = GeoPoint(0.0, 0.0)
        pole = GeoPoint(90.0, 0.0)
        assert haversine_km(equator, pole) == pytest.approx(10_007.5, rel=0.01)

    def test_method_on_point(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 1.0)
        assert a.distance_km(b) == pytest.approx(111.19, rel=0.01)


class TestNearestPoint:
    class _Item:
        def __init__(self, name, lat, lon):
            self.name = name
            self.point = GeoPoint(lat, lon)

    def test_picks_closest(self):
        origin = GeoPoint(0.0, 0.0)
        items = [self._Item("far", 40.0, 40.0), self._Item("near", 1.0, 1.0)]
        nearest, distance = nearest_point(origin, items)
        assert nearest.name == "near"
        assert distance == pytest.approx(haversine_km(origin, items[1].point))

    def test_empty_candidates(self):
        nearest, distance = nearest_point(GeoPoint(0, 0), [])
        assert nearest is None
        assert distance == float("inf")

    def test_custom_accessor(self):
        origin = GeoPoint(0.0, 0.0)
        items = [(GeoPoint(2.0, 2.0), "a"), (GeoPoint(0.5, 0.5), "b")]
        nearest, _ = nearest_point(origin, items, point_of=lambda item: item[0])
        assert nearest[1] == "b"


class TestBoundingLatitudes:
    def test_bounds(self):
        points = [GeoPoint(-10, 0), GeoPoint(25, 10), GeoPoint(3, -5)]
        assert bounding_latitudes(points) == (-10, 25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_latitudes([])
