"""Tests for the synthetic infrastructure map and regional price models."""

import pytest

from repro.geo import (
    BackbonePoint,
    GeoPoint,
    GridEnergyPricing,
    InfrastructureMap,
    LandPriceModel,
    PowerPlant,
    synthesize_infrastructure,
)


class TestPowerPlant:
    def test_small_plants_rejected(self):
        with pytest.raises(ValueError):
            PowerPlant("tiny", GeoPoint(0, 0), capacity_kw=50_000)

    def test_valid_plant(self):
        plant = PowerPlant("ok", GeoPoint(10, 10), capacity_kw=500_000)
        assert plant.capacity_kw == 500_000


class TestInfrastructureMap:
    @pytest.fixture()
    def small_map(self):
        return InfrastructureMap(
            plants=[
                PowerPlant("a", GeoPoint(0.0, 0.0), 200_000),
                PowerPlant("b", GeoPoint(10.0, 10.0), 900_000),
            ],
            backbones=[BackbonePoint("x", GeoPoint(5.0, 5.0))],
        )

    def test_nearest_plant(self, small_map):
        plant, distance = small_map.nearest_plant(GeoPoint(1.0, 1.0))
        assert plant.name == "a"
        assert distance > 0

    def test_nearest_backbone(self, small_map):
        backbone, distance = small_map.nearest_backbone(GeoPoint(4.0, 5.0))
        assert backbone.name == "x"
        assert distance == pytest.approx(111.19, rel=0.02)

    def test_nearest_plant_capacity(self, small_map):
        assert small_map.nearest_plant_capacity_kw(GeoPoint(9.0, 9.0)) == 900_000

    def test_empty_map_returns_none(self):
        empty = InfrastructureMap()
        plant, distance = empty.nearest_plant(GeoPoint(0, 0))
        assert plant is None and distance == float("inf")
        assert empty.nearest_plant_capacity_kw(GeoPoint(0, 0)) == 0.0


class TestSynthesizedInfrastructure:
    def test_deterministic(self):
        a = synthesize_infrastructure(seed=3)
        b = synthesize_infrastructure(seed=3)
        assert len(a.plants) == len(b.plants)
        assert a.plants[0].point == b.plants[0].point

    def test_coverage_and_scale(self):
        infra = synthesize_infrastructure()
        assert len(infra.plants) > 100
        assert len(infra.backbones) > 80
        # Dense regions should be close to infrastructure.
        _, distance = infra.nearest_plant(GeoPoint(40.0, -100.0))
        assert distance < 1500

    def test_all_plants_at_least_100mw(self):
        infra = synthesize_infrastructure()
        assert all(plant.capacity_kw >= 100_000 for plant in infra.plants)


class TestLandPrices:
    def test_override_wins(self):
        model = LandPriceModel()
        model.set_override("special", 947.0)
        assert model.price_per_m2("special", GeoPoint(44, -71)) == 947.0

    def test_negative_override_rejected(self):
        model = LandPriceModel()
        with pytest.raises(ValueError):
            model.set_override("bad", -1.0)

    def test_urbanisation_increases_price(self):
        model = LandPriceModel()
        point = GeoPoint(40.0, -75.0)
        rural = model.price_per_m2("loc", point, urbanisation=0.1)
        urban = model.price_per_m2("loc", point, urbanisation=0.9)
        assert urban > rural

    def test_deterministic_per_name(self):
        model = LandPriceModel()
        point = GeoPoint(40.0, -75.0)
        assert model.price_per_m2("x", point) == model.price_per_m2("x", point)

    def test_invalid_urbanisation(self):
        model = LandPriceModel()
        with pytest.raises(ValueError):
            model.price_per_m2("x", GeoPoint(0, 0), urbanisation=1.5)

    def test_invalid_base_price(self):
        with pytest.raises(ValueError):
            LandPriceModel(base_price=0.0)


class TestGridPrices:
    def test_override_wins(self):
        pricing = GridEnergyPricing()
        pricing.set_override("Kiev, Ukraine", 0.030)
        assert pricing.price_per_kwh("Kiev, Ukraine", GeoPoint(50.45, 30.52)) == 0.030

    def test_negative_override_rejected(self):
        pricing = GridEnergyPricing()
        with pytest.raises(ValueError):
            pricing.set_override("bad", -0.1)

    def test_prices_positive_and_reasonable(self):
        pricing = GridEnergyPricing()
        price = pricing.price_per_kwh("somewhere", GeoPoint(45.0, 10.0))
        assert 0.015 <= price <= 0.30

    def test_mwh_conversion(self):
        pricing = GridEnergyPricing()
        point = GeoPoint(40.0, -100.0)
        assert pricing.price_per_mwh("x", point) == pytest.approx(
            1000.0 * pricing.price_per_kwh("x", point)
        )

    def test_deterministic_per_name(self):
        pricing = GridEnergyPricing()
        point = GeoPoint(12.0, 100.0)
        assert pricing.price_per_kwh("a", point) == pricing.price_per_kwh("a", point)
