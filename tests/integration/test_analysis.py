"""Tests for the analysis (figure/table) drivers."""

import numpy as np
import pytest

from repro.analysis import (
    case_study_breakdown,
    figure3_capacity_factor_cdf,
    figure4_pue_curve,
    figure5_pue_vs_capacity_factor,
    figure11_capacity_vs_green,
    figure15_follow_the_renewables,
    format_table,
    series_to_rows,
    table2_good_locations,
    table3_no_storage_network,
)
from repro.analysis.figures import solution_costs
from repro.analysis.tables import network_summary_row


class TestInputDataFigures:
    def test_figure3_sorted_cdf(self, all_profiles):
        data = figure3_capacity_factor_cdf(all_profiles)
        assert np.all(np.diff(data["solar_cf"]) >= 0)
        assert np.all(np.diff(data["wind_cf"]) >= 0)
        assert data["locations_pct"][0] == 0.0 and data["locations_pct"][-1] == 100.0
        with pytest.raises(ValueError):
            figure3_capacity_factor_cdf([])

    def test_figure4_matches_paper_endpoints(self):
        data = figure4_pue_curve()
        assert data["temperature_c"][0] == 15.0
        assert data["pue"][0] == pytest.approx(1.05, abs=0.01)
        assert data["pue"][-1] == pytest.approx(1.40, abs=0.01)

    def test_figure5_arrays_aligned(self, all_profiles):
        data = figure5_pue_vs_capacity_factor(all_profiles)
        assert data["solar_cf"].shape == data["avg_pue"].shape == data["wind_cf"].shape
        assert np.all(data["avg_pue"] >= 1.0)


class TestTables:
    def test_table2_rows(self, small_tool):
        rows = table2_good_locations(small_tool)
        assert len(rows) == 5
        by_location = {row["location"]: row for row in rows}
        assert by_location["Kiev, Ukraine"]["dc_type"] == "brown"
        assert by_location["Harare, Zimbabwe"]["solar_capacity_factor_pct"] == pytest.approx(
            22.4, abs=1.0
        )
        assert by_location["Mount Washington, NH, USA"]["wind_capacity_factor_pct"] == pytest.approx(
            55.6, abs=1.5
        )
        # Costs land in the ballpark of Table II's $8.7M-16.5M/month.
        for row in rows:
            assert 6.0 <= row["monthly_cost_musd"] <= 25.0

    def test_table3_rows(self, case_study_plan):
        rows = table3_no_storage_network(case_study_plan)
        assert len(rows) == case_study_plan.num_datacenters
        assert all("it_capacity_mw" in row for row in rows)

    def test_case_study_breakdown_totals(self, case_study_plan):
        rows = case_study_breakdown(case_study_plan)
        assert rows[-1]["location"] == "TOTAL"
        assert rows[-1]["total_musd"] == pytest.approx(
            case_study_plan.total_monthly_cost / 1e6, rel=1e-6
        )

    def test_network_summary_row_handles_missing_plan(self):
        row = network_summary_row("scenario", None)
        assert row["num_datacenters"] == 0


class TestSweepHelpers:
    def test_solution_costs_and_capacities(self, case_study_solution):
        results = {"wind_and_or_solar": {0.5: case_study_solution}}
        costs = solution_costs(results)
        assert costs["wind_and_or_solar"][0] == pytest.approx(
            case_study_solution.monthly_cost / 1e6
        )
        capacities = figure11_capacity_vs_green(results)
        assert capacities["wind_and_or_solar"][0] == pytest.approx(
            case_study_solution.plan.total_capacity_kw / 1000.0
        )


class TestFigure15:
    def test_emulation_series_structure(self, case_study_plan):
        series = figure15_follow_the_renewables(case_study_plan, duration_hours=6, num_vms=6)
        assert len(series) == case_study_plan.num_datacenters
        for per_dc in series.values():
            assert len(per_dc["hour"]) == 6
            assert all(value >= 0.0 for value in per_dc["load_kw"])
            assert all(value >= 0.0 for value in per_dc["green_available_kw"])


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 20.5, "b": "longer"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_empty(self):
        assert format_table([]) == "(empty table)"

    def test_series_to_rows(self):
        rows = series_to_rows({"cost": [1.0, 2.0]}, "green_pct", [0, 50])
        assert rows[1] == {"green_pct": 50, "cost": 2.0}
        with pytest.raises(ValueError):
            series_to_rows({"cost": [1.0]}, "x", [0, 1])
