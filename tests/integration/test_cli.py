"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.capacity_mw == 50.0
        assert args.green == 0.5
        assert args.storage == "net_metering"

    def test_invalid_storage_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--storage", "flywheel"])

    def test_emulate_defaults(self):
        args = build_parser().parse_args(["emulate"])
        assert args.vms == 9
        assert len(args.sites) == 3


class TestPlanCommand:
    def test_small_plan_runs(self):
        code, output = run_cli(
            [
                "--locations", "24", "--seed", "3",
                "plan", "--capacity-mw", "20", "--green", "0.5",
                "--iterations", "6", "--keep", "6", "--chains", "1",
            ]
        )
        assert code == 0
        assert "Network of" in output
        assert "achieved green fraction" in output

    def test_brown_plan_runs(self):
        code, output = run_cli(
            [
                "--locations", "24", "--seed", "3",
                "plan", "--capacity-mw", "20", "--green", "0.0", "--sources", "none",
                "--iterations", "5", "--keep", "6", "--chains", "1",
            ]
        )
        assert code == 0
        assert "green fraction: 0.0 %" in output


class TestSingleSiteCommand:
    def test_known_location(self):
        code, output = run_cli(
            ["--locations", "24", "single-site", "--location", "Nairobi, Kenya", "--green", "0.5"]
        )
        assert code == 0
        assert "Nairobi, Kenya" in output

    def test_unknown_location_lists_anchors(self):
        code, output = run_cli(["--locations", "24", "single-site", "--location", "Atlantis"])
        assert code == 1
        assert "Kiev, Ukraine" in output


class TestSweepCommand:
    @staticmethod
    def write_tiny_spec(tmp_path):
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-tiny",
            num_locations=12,
            catalog_seed=3,
            hours_per_epoch=6,
            total_capacity_kw=20_000.0,
            search={"keep_locations": 4, "max_iterations": 3, "patience": 3,
                    "num_chains": 1, "seed": 3, "max_datacenters": 3},
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json())
        return path

    def test_list_scenarios(self):
        code, output = run_cli(["sweep", "--list"])
        assert code == 0
        for name in ("fig06", "fig08", "table3", "smoke"):
            assert name in output

    def test_requires_scenario_or_spec(self):
        code, output = run_cli(["sweep"])
        assert code == 2
        assert "--scenario or --spec" in output

    def test_unknown_scenario_fails_cleanly(self):
        code, output = run_cli(["sweep", "--scenario", "fig99", "--no-cache"])
        assert code == 1
        assert "unknown scenario" in output

    def test_spec_file_sweep_with_axis_json_output(self, tmp_path):
        path = self.write_tiny_spec(tmp_path)
        code, output = run_cli(
            [
                "sweep", "--spec", str(path),
                "--axis", "min_green_fraction=0.0,0.5",
                "--json", "--no-cache",
            ]
        )
        assert code == 0
        payload = json.loads(output)
        assert len(payload["points"]) == 2
        records = [point["record"] for point in payload["points"]]
        assert all(record["feasible"] for record in records)
        greens = [point["overrides"]["min_green_fraction"] for point in payload["points"]]
        assert greens == [0.0, 0.5]

    def test_second_run_served_from_artifact_cache(self, tmp_path):
        path = self.write_tiny_spec(tmp_path)
        argv = [
            "sweep", "--spec", str(path),
            "--axis", "min_green_fraction=0.0,0.5",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        code_first, output_first = run_cli(argv)
        code_second, output_second = run_cli(argv)
        assert code_first == 0 and code_second == 0
        assert "2 computed, 0 from cache" in output_first
        assert "0 computed, 2 from cache" in output_second

    def test_set_overrides_spec_fields(self, tmp_path):
        path = self.write_tiny_spec(tmp_path)
        code, output = run_cli(
            [
                "sweep", "--spec", str(path),
                "--set", "storage=none", "--set", "min_green_fraction=1.0",
                "--json", "--no-cache",
            ]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["points"][0]["spec"]["storage"] == "none"
        assert payload["points"][0]["spec"]["min_green_fraction"] == 1.0


class TestEmulateCommand:
    def test_short_emulation(self):
        code, output = run_cli(["--locations", "24", "emulate", "--hours", "4", "--vms", "4"])
        assert code == 0
        assert "migrations" in output
        assert "green fraction" in output

    def test_unknown_site_fails_cleanly(self):
        code, output = run_cli(
            ["--locations", "24", "emulate", "--hours", "2", "--sites", "Nowhere, Atlantis"]
        )
        assert code == 1
        assert "unknown emulation site" in output
