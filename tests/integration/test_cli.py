"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.capacity_mw == 50.0
        assert args.green == 0.5
        assert args.storage == "net_metering"

    def test_invalid_storage_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--storage", "flywheel"])

    def test_emulate_defaults(self):
        args = build_parser().parse_args(["emulate"])
        assert args.vms == 9
        assert len(args.sites) == 3


class TestPlanCommand:
    def test_small_plan_runs(self):
        code, output = run_cli(
            [
                "--locations", "24", "--seed", "3",
                "plan", "--capacity-mw", "20", "--green", "0.5",
                "--iterations", "6", "--keep", "6", "--chains", "1",
            ]
        )
        assert code == 0
        assert "Network of" in output
        assert "achieved green fraction" in output

    def test_brown_plan_runs(self):
        code, output = run_cli(
            [
                "--locations", "24", "--seed", "3",
                "plan", "--capacity-mw", "20", "--green", "0.0", "--sources", "none",
                "--iterations", "5", "--keep", "6", "--chains", "1",
            ]
        )
        assert code == 0
        assert "green fraction: 0.0 %" in output


class TestSingleSiteCommand:
    def test_known_location(self):
        code, output = run_cli(
            ["--locations", "24", "single-site", "--location", "Nairobi, Kenya", "--green", "0.5"]
        )
        assert code == 0
        assert "Nairobi, Kenya" in output

    def test_unknown_location_lists_anchors(self):
        code, output = run_cli(["--locations", "24", "single-site", "--location", "Atlantis"])
        assert code == 1
        assert "Kiev, Ukraine" in output


class TestEmulateCommand:
    def test_short_emulation(self):
        code, output = run_cli(["--locations", "24", "emulate", "--hours", "4", "--vms", "4"])
        assert code == 0
        assert "migrations" in output
        assert "green fraction" in output

    def test_unknown_site_fails_cleanly(self):
        code, output = run_cli(
            ["--locations", "24", "emulate", "--hours", "2", "--sites", "Nowhere, Atlantis"]
        )
        assert code == 1
        assert "unknown emulation site" in output
