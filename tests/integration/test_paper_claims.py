"""End-to-end shape checks against the paper's headline claims.

These tests do not reproduce the paper's absolute dollar figures (our location
data is synthetic and the heuristic settings are scaled down for test speed);
they assert the qualitative findings of Section IV and Section V: orderings,
rough factors and crossovers.
"""

import pytest

from repro.core import EnergySources, SearchSettings, StorageMode
from repro.greennebula import EmulatedCloud, EmulationConfig


@pytest.fixture(scope="module")
def settings():
    return SearchSettings(
        keep_locations=8, max_iterations=14, patience=8, num_chains=2, seed=11, max_datacenters=4
    )


@pytest.fixture(scope="module")
def brown_solution(small_tool, settings):
    return small_tool.plan_network(
        50_000.0, 0.0, EnergySources.NONE, StorageMode.NET_METERING, settings=settings
    )


@pytest.fixture(scope="module")
def green50_solution(small_tool, settings):
    return small_tool.plan_network(
        50_000.0, 0.5, EnergySources.SOLAR_AND_WIND, StorageMode.NET_METERING, settings=settings
    )


@pytest.fixture(scope="module")
def green100_net_metering(small_tool, settings):
    return small_tool.plan_network(
        50_000.0, 1.0, EnergySources.SOLAR_AND_WIND, StorageMode.NET_METERING, settings=settings
    )


@pytest.fixture(scope="module")
def green100_no_storage(small_tool, settings):
    return small_tool.plan_network(
        50_000.0, 1.0, EnergySources.SOLAR_AND_WIND, StorageMode.NONE, settings=settings
    )


class TestSectionIVClaims:
    def test_all_scenarios_feasible(
        self, brown_solution, green50_solution, green100_net_metering, green100_no_storage
    ):
        for solution in (
            brown_solution,
            green50_solution,
            green100_net_metering,
            green100_no_storage,
        ):
            assert solution.feasible and solution.plan is not None

    def test_green_service_costs_a_low_premium(self, brown_solution, green50_solution):
        """Claim: ~50 % green costs only ~13 % more than the best brown network."""
        premium = green50_solution.monthly_cost / brown_solution.monthly_cost - 1.0
        assert 0.0 <= premium <= 0.35

    def test_100_percent_green_premium_moderate_with_net_metering(
        self, brown_solution, green100_net_metering
    ):
        """Claim: 100 % green with net metering is ~28 % more than brown."""
        premium = green100_net_metering.monthly_cost / brown_solution.monthly_cost - 1.0
        assert 0.0 <= premium <= 0.60

    def test_wind_cheaper_than_solar_with_net_metering(self, small_tool, settings):
        """Claim: with storage, wind is the more cost-effective technology."""
        wind = small_tool.plan_network(
            50_000.0, 0.75, EnergySources.WIND_ONLY, StorageMode.NET_METERING, settings=settings
        )
        solar = small_tool.plan_network(
            50_000.0, 0.75, EnergySources.SOLAR_ONLY, StorageMode.NET_METERING, settings=settings
        )
        assert wind.feasible and solar.feasible
        assert wind.monthly_cost < solar.monthly_cost

    def test_no_storage_is_much_more_expensive_at_100_percent(
        self, green100_net_metering, green100_no_storage
    ):
        """Claim: storage cuts the cost of a 100 % green service by a large factor."""
        ratio = green100_no_storage.monthly_cost / green100_net_metering.monthly_cost
        assert ratio >= 1.5

    def test_batteries_between_net_metering_and_nothing(
        self, small_tool, settings, green100_net_metering, green100_no_storage
    ):
        batteries = small_tool.plan_network(
            50_000.0, 1.0, EnergySources.SOLAR_AND_WIND, StorageMode.BATTERIES, settings=settings
        )
        assert batteries.feasible
        assert batteries.monthly_cost >= green100_net_metering.monthly_cost * 0.98
        assert batteries.monthly_cost <= green100_no_storage.monthly_cost * 1.02

    def test_little_overprovisioning_with_storage(self, green100_net_metering):
        """Claim (Fig. 11): with net metering the network stays near the 50 MW minimum."""
        plan = green100_net_metering.plan
        assert plan.total_capacity_kw <= 50_000.0 * 1.25

    def test_no_storage_requires_overprovisioning_or_more_sites(self, green100_no_storage):
        """Claim (Fig. 12 / Table III): without storage the service over-provisions."""
        plan = green100_no_storage.plan
        overprovisioned = plan.total_capacity_kw > 50_000.0 * 1.05
        more_sites = plan.num_datacenters >= 3
        big_plants = (plan.total_solar_kw + plan.total_wind_kw) > 4 * 50_000.0
        assert overprovisioned or more_sites or big_plants

    def test_few_datacenters_needed_with_storage(self, green100_net_metering):
        """Claim: 2-3 datacenters suffice even for high green percentages."""
        assert green100_net_metering.plan.num_datacenters <= 3

    def test_migration_overhead_matters_without_storage(self, small_tool, settings):
        """Claim (Fig. 13): cheaper migrations reduce the no-storage 100 % green cost."""
        free_migration = small_tool.plan_network(
            50_000.0,
            1.0,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NONE,
            migration_factor=0.0,
            settings=settings,
        )
        full_migration = small_tool.plan_network(
            50_000.0,
            1.0,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NONE,
            migration_factor=1.0,
            settings=settings,
        )
        assert free_migration.feasible and full_migration.feasible
        assert free_migration.monthly_cost <= full_migration.monthly_cost * 1.02

    def test_net_metering_return_has_little_impact(self, small_tool, settings):
        """Claim (Section IV-B): the credit level barely changes the total cost."""
        full_credit = small_tool.plan_network(
            50_000.0,
            1.0,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NET_METERING,
            net_meter_credit=1.0,
            settings=settings,
        )
        no_credit = small_tool.plan_network(
            50_000.0,
            1.0,
            EnergySources.SOLAR_AND_WIND,
            StorageMode.NET_METERING,
            net_meter_credit=0.0,
            settings=settings,
        )
        assert full_credit.feasible and no_credit.feasible
        assert no_credit.monthly_cost <= full_credit.monthly_cost * 1.15


class TestSectionVClaims:
    def test_follow_the_renewables_with_low_overhead(self, case_study_plan):
        """GreenNebula keeps the service running while moving load with the sun."""
        config = EmulationConfig(num_vms=9, duration_hours=24, seed=5)
        cloud = EmulatedCloud.from_network_plan(case_study_plan, config)
        summary = cloud.run()
        assert summary.total_migrations < 9 * 24  # not thrashing
        assert summary.mean_schedule_time_s < 2.0  # paper reports sub-second scheduling
        assert sum(dc.num_vms for dc in cloud.datacenters) == 9
