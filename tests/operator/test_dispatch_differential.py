"""Differential tests for the sliding-horizon dispatch core.

The incremental path (one persistent mutable HiGHS model, spliced per step)
must produce the same window objectives as a from-scratch cold rebuild of
the identical window state, for every storage/export configuration and for
both basis-carry strategies — and it must do so *without* full LP rebuilds,
which the LP/rebuild counters pin down.
"""

import numpy as np
import pytest

from repro.lpsolver import highs_backend
from repro.operator.dispatch import (
    DispatchConfig,
    RollingDispatcher,
    SiteAsset,
)
from repro.operator.traffic import TrafficModel

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)


def _sites(needed, battery_kwh=200.0, capacity_kw=700.0):
    hours = np.arange(needed, dtype=float)

    def build(name, phase):
        production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None)
        return SiteAsset(
            name=name,
            capacity_kw=capacity_kw,
            battery_kwh=battery_kwh,
            energy_price_per_kwh=0.12,
            pue=1.2 + 0.1 * np.cos(hours / 5.0),
            production_kw=production * capacity_kw * 1.5,
        )

    return [build("alpha", 0.0), build("beta", 12.0)]


def _replay(dispatcher, sites, demand, production, steps, horizon, check=None):
    capacities = np.array([site.capacity_kw for site in sites])
    load = np.minimum(np.array([0.6, 0.4]) * demand[0], capacities)
    level = np.zeros(len(sites))
    for step in range(steps):
        demand_hat = demand[step : step + horizon].copy()
        production_hat = production[:, step : step + horizon].copy()
        if step == 0:
            decision = dispatcher.start(0, load, level, demand_hat, production_hat)
        else:
            decision = dispatcher.advance(load, level, demand_hat, production_hat)
        if check is not None:
            check(step, decision)
        load = decision.compute_kw.copy()
        level = decision.level_kwh.copy()
    return dispatcher


CONFIGS = [
    {"allow_export": True},                      # net metering
    {"allow_export": False},                     # batteries only
    {"allow_export": False, "battery": 0.0},     # no storage at all
    {"allow_export": True, "carry": False},      # projected-basis carry
]


class TestSlideVsColdRebuild:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_objectives_match_cold_rebuild(self, config):
        steps, horizon = 16, 8
        needed = steps + horizon
        battery = config.get("battery", 200.0)
        sites = _sites(needed, battery_kwh=battery)
        trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        production = np.stack([site.production_kw for site in sites])
        dispatcher = RollingDispatcher(
            sites,
            DispatchConfig(
                horizon=horizon,
                allow_export=config.get("allow_export", True),
                carry_block_status=config.get("carry", True),
            ),
        )

        def check(step, decision):
            cold = dispatcher.rebuild_window()
            # Warm and cold land on the same optimum up to HiGHS's own
            # optimality tolerances (~1e-7): on isolated near-degenerate
            # windows the warm-started simplex may stop at a vertex whose
            # objective differs by ~1e-7 absolute, without propagating to
            # later steps (the cold oracle itself is bit-reproducible).
            assert decision.objective == pytest.approx(cold, rel=1e-7, abs=1e-5), step

        _replay(dispatcher, sites, demand, production, steps, horizon, check=check)
        # The acceptance criterion: the horizon slide never cold-rebuilds.
        assert dispatcher.stats["cold_loads"] == 1
        assert dispatcher.stats["slides"] == steps - 1
        assert dispatcher.stats["lp_solves"] == steps
        assert dispatcher.stats["warm_solves"] == steps - 1

    def test_carry_modes_agree_on_trajectory_costs(self):
        steps, horizon = 12, 6
        needed = steps + horizon
        trace = TrafficModel(seed=5).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        objectives = {}
        for carry in (False, True):
            sites = _sites(needed)
            production = np.stack([site.production_kw for site in sites])
            dispatcher = RollingDispatcher(
                sites, DispatchConfig(horizon=horizon, carry_block_status=carry)
            )
            seen = []
            _replay(
                dispatcher, sites, demand, production, steps, horizon,
                check=lambda step, decision: seen.append(decision.objective),
            )
            objectives[carry] = seen
        np.testing.assert_allclose(objectives[False], objectives[True], rtol=1e-9)


class TestDispatchSemantics:
    def test_migration_is_positive_part_of_load_shed(self):
        steps, horizon = 8, 6
        needed = steps + horizon
        sites = _sites(needed)
        trace = TrafficModel(seed=1).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        production = np.stack([site.production_kw for site in sites])
        dispatcher = RollingDispatcher(sites, DispatchConfig(horizon=horizon))
        capacities = np.array([site.capacity_kw for site in sites])
        previous = {"load": np.minimum(np.array([0.6, 0.4]) * demand[0], capacities)}

        def check(step, decision):
            shed = np.maximum(0.0, previous["load"] - decision.compute_kw)
            np.testing.assert_allclose(decision.migrate_kw, shed, atol=1e-6)
            previous["load"] = decision.compute_kw.copy()

        _replay(dispatcher, sites, demand, production, steps, horizon, check=check)

    def test_wan_budget_caps_moved_load(self):
        steps, horizon = 10, 6
        needed = steps + horizon
        sites = _sites(needed)
        trace = TrafficModel(seed=2).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        production = np.stack([site.production_kw for site in sites])
        budget = 25.0
        dispatcher = RollingDispatcher(
            sites, DispatchConfig(horizon=horizon, wan_move_kw=budget)
        )

        def check(step, decision):
            assert decision.moved_kw <= budget + 1e-6

        _replay(dispatcher, sites, demand, production, steps, horizon, check=check)

    def test_unserved_slack_absorbs_overload(self):
        steps, horizon = 4, 4
        needed = steps + horizon
        sites = _sites(needed, capacity_kw=100.0)  # 200 kW total service
        demand = np.full(needed, 500.0)            # far beyond capacity
        production = np.stack([site.production_kw for site in sites])
        dispatcher = RollingDispatcher(sites, DispatchConfig(horizon=horizon))
        unserved = []
        _replay(
            dispatcher, sites, demand, production, steps, horizon,
            check=lambda step, decision: unserved.append(decision.unserved_kw),
        )
        assert min(unserved) >= 300.0 - 1e-6  # demand - capacity

    def test_battery_level_respects_capacity_and_dynamics(self):
        steps, horizon = 12, 6
        needed = steps + horizon
        sites = _sites(needed, battery_kwh=50.0)
        trace = TrafficModel(seed=7).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        production = np.stack([site.production_kw for site in sites])
        config = DispatchConfig(horizon=horizon, allow_export=False)
        dispatcher = RollingDispatcher(sites, config)
        state = {"level": np.zeros(2)}

        def check(step, decision):
            assert np.all(decision.level_kwh <= 50.0 + 1e-6)
            expected = (
                state["level"]
                + config.battery_efficiency * decision.charge_kw * config.step_hours
                - decision.discharge_kw * config.step_hours
            )
            np.testing.assert_allclose(decision.level_kwh, expected, atol=1e-6)
            state["level"] = decision.level_kwh.copy()

        _replay(dispatcher, sites, demand, production, steps, horizon, check=check)

    def test_advance_before_start_raises(self):
        sites = _sites(10)
        dispatcher = RollingDispatcher(sites, DispatchConfig(horizon=4))
        with pytest.raises(RuntimeError):
            dispatcher.advance(np.zeros(2), np.zeros(2), np.zeros(4), np.zeros((2, 4)))

    def test_window_shape_validation(self):
        sites = _sites(10)
        dispatcher = RollingDispatcher(sites, DispatchConfig(horizon=4))
        with pytest.raises(ValueError):
            dispatcher.start(0, np.zeros(2), np.zeros(2), np.zeros(3), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            dispatcher.start(0, np.zeros(1), np.zeros(2), np.zeros(4), np.zeros((2, 4)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DispatchConfig(horizon=1)
        with pytest.raises(ValueError):
            DispatchConfig(step_hours=0.0)
        with pytest.raises(ValueError):
            DispatchConfig(export_credit=1.5)
        with pytest.raises(ValueError):
            DispatchConfig(unserved_penalty=0.0)


class TestNonIncrementalFallback:
    def test_cold_path_matches_incremental(self):
        steps, horizon = 8, 6
        needed = steps + horizon
        trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=1000.0)
        demand = np.asarray(trace.demand_kw)
        objectives = {}
        for incremental in (True, False):
            sites = _sites(needed)
            production = np.stack([site.production_kw for site in sites])
            dispatcher = RollingDispatcher(
                sites, DispatchConfig(horizon=horizon, incremental=incremental)
            )
            seen = []
            _replay(
                dispatcher, sites, demand, production, steps, horizon,
                check=lambda step, decision: seen.append(decision.objective),
            )
            objectives[incremental] = seen
            if not incremental:
                assert dispatcher.stats["cold_loads"] == steps
        np.testing.assert_allclose(objectives[True], objectives[False], rtol=1e-9)
