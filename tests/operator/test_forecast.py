"""Forecaster family: kinds, determinism, rolling cadence."""

import numpy as np
import pytest

from repro.operator.forecast import (
    FORECASTER_KINDS,
    NoisyOracleForecaster,
    OracleForecaster,
    PersistenceForecaster,
    RollingForecast,
    SeasonalNaiveForecaster,
    deterministic_noise,
    make_forecaster,
)


@pytest.fixture(scope="module")
def series():
    hours = np.arange(200, dtype=float)
    return 100.0 + 40.0 * np.sin(2 * np.pi * hours / 24.0)


class TestDeterministicNoise:
    def test_pure_function_of_seed_key_index(self):
        a = deterministic_noise(7, "demand", np.array([5, 6, 7]), 0.2)
        b = deterministic_noise(7, "demand", np.array([5, 6, 7]), 0.2)
        np.testing.assert_array_equal(a, b)

    def test_independent_of_call_order_and_window(self):
        # The factor at index 6 is the same whether asked alone, in a window
        # starting at 5, or after unrelated draws — no RNG state leaks.
        window = deterministic_noise(7, "demand", np.array([5, 6, 7]), 0.2)
        deterministic_noise(7, "demand", np.arange(100), 0.2)
        alone = deterministic_noise(7, "demand", np.array([6]), 0.2)
        assert alone[0] == window[1]

    def test_keys_and_seeds_decorrelate(self):
        idx = np.arange(8)
        assert not np.allclose(
            deterministic_noise(7, "demand", idx, 0.2),
            deterministic_noise(7, "site-a", idx, 0.2),
        )
        assert not np.allclose(
            deterministic_noise(7, "demand", idx, 0.2),
            deterministic_noise(8, "demand", idx, 0.2),
        )

    def test_zero_std_is_exact(self):
        np.testing.assert_array_equal(
            deterministic_noise(1, "x", np.arange(4), 0.0), np.ones(4)
        )

    def test_factors_clipped_nonnegative(self):
        factors = deterministic_noise(3, "x", np.arange(500), 2.0)
        assert np.all(factors >= 0.0)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            deterministic_noise(1, "x", np.arange(4), -0.1)


class TestForecasterKinds:
    def test_factory_covers_all_kinds(self):
        for kind in FORECASTER_KINDS:
            forecaster = make_forecaster(kind, key="demand", error=0.1, seed=2)
            assert forecaster.kind == kind

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_forecaster("prophet")

    def test_oracle_returns_truth(self, series):
        predicted = OracleForecaster(key="demand").forecast(series, 10, 24)
        np.testing.assert_array_equal(predicted, series[10:34])

    def test_noisy_oracle_zero_error_equals_oracle(self, series):
        noisy = NoisyOracleForecaster(key="demand", error=0.0, seed=1)
        np.testing.assert_array_equal(noisy.forecast(series, 10, 24), series[10:34])

    def test_noisy_oracle_perturbs_and_reproduces(self, series):
        noisy = NoisyOracleForecaster(key="demand", error=0.3, seed=1)
        first = noisy.forecast(series, 10, 24)
        again = noisy.forecast(series, 10, 24)
        np.testing.assert_array_equal(first, again)
        assert not np.allclose(first, series[10:34])
        assert np.all(first >= 0.0)

    def test_persistence_repeats_now(self, series):
        predicted = PersistenceForecaster(key="demand").forecast(series, 30, 12)
        np.testing.assert_array_equal(predicted, np.full(12, series[30]))

    def test_seasonal_naive_reads_previous_period(self, series):
        forecaster = SeasonalNaiveForecaster(key="demand", period=24)
        predicted = forecaster.forecast(series, 48, 24)
        np.testing.assert_array_equal(predicted, series[24:48])

    def test_seasonal_naive_never_reads_the_future(self, series):
        # Even with a horizon longer than the period, every reference index
        # must be <= now.
        forecaster = SeasonalNaiveForecaster(key="demand", period=24)
        predicted = forecaster.forecast(series, 30, 40)
        for offset, value in enumerate(predicted):
            assert value in series[: 31]

    def test_seasonal_naive_start_of_series_falls_back(self, series):
        forecaster = SeasonalNaiveForecaster(key="demand", period=24)
        predicted = forecaster.forecast(series, 3, 6)
        np.testing.assert_array_equal(predicted, np.full(6, series[3]))


class TestRollingForecast:
    def test_cadence_one_reissues_every_step(self, series):
        rolling = RollingForecast(PersistenceForecaster(key="d"), horizon=6, cadence=1)
        np.testing.assert_array_equal(rolling.window(series, 10), np.full(6, series[10]))
        np.testing.assert_array_equal(rolling.window(series, 11), np.full(6, series[11]))

    def test_cadence_holds_stale_forecast_between_issues(self, series):
        rolling = RollingForecast(PersistenceForecaster(key="d"), horizon=6, cadence=4)
        first = rolling.window(series, 8)
        second = rolling.window(series, 9)  # same issue, shifted by one
        np.testing.assert_array_equal(second, np.full(6, series[8]))
        assert len(second) == len(first) == 6
        reissued = rolling.window(series, 12)
        np.testing.assert_array_equal(reissued, np.full(6, series[12]))

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingForecast(PersistenceForecaster(), horizon=0)
        with pytest.raises(ValueError):
            RollingForecast(PersistenceForecaster(), horizon=4, cadence=0)
