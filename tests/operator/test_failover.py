"""Failover: the greedy fallback dispatcher, solver outages, tiered shedding."""

import numpy as np
import pytest

from repro.lpsolver import highs_backend
from repro.operator import (
    FaultSpec,
    GreedyFallbackDispatcher,
    OperateConfig,
    ReplayHarness,
    SiteAsset,
    SiteOutage,
    SolverOutage,
    TrafficModel,
)
from repro.operator.dispatch import DispatchConfig, DispatchError

SITE_NAMES = ("alpha", "beta", "gamma")


def _sites(caps=(600.0, 300.0, 100.0), steps=8, battery_fraction=0.3):
    return [
        SiteAsset(
            name=name,
            capacity_kw=cap,
            battery_kwh=battery_fraction * cap,
            energy_price_per_kwh=0.1 * (index + 1),
            pue=np.full(steps, 1.25),
            production_kw=np.zeros(steps),
        )
        for index, (name, cap) in enumerate(zip(SITE_NAMES, caps))
    ]


def _decide(dispatcher, demand, load=None, level=None, production=None, **kwargs):
    n = len(dispatcher.sites)
    return dispatcher.decide(
        step=0,
        load_kw=np.zeros(n) if load is None else np.asarray(load, dtype=float),
        level_kwh=np.zeros(n) if level is None else np.asarray(level, dtype=float),
        demand_kw=demand,
        production_kw=np.zeros(n) if production is None else np.asarray(production, dtype=float),
        **kwargs,
    )


class TestGreedyFallbackDispatcher:
    def test_allocation_is_proportional_to_capacity(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        decision = _decide(dispatcher, demand=500.0)
        assert decision.compute_kw == pytest.approx([300.0, 150.0, 50.0])
        assert decision.unserved_kw == pytest.approx(0.0)
        assert decision.degraded is True

    def test_overload_clips_at_capacity_and_sheds_the_rest(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        decision = _decide(dispatcher, demand=1500.0)
        assert decision.compute_kw == pytest.approx([600.0, 300.0, 100.0])
        assert decision.unserved_kw == pytest.approx(500.0)

    def test_outage_capacity_is_respected(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        decision = _decide(
            dispatcher, demand=300.0, capacity_now=np.array([0.0, 300.0, 100.0])
        )
        assert decision.compute_kw[0] == pytest.approx(0.0)
        assert decision.compute_kw == pytest.approx([0.0, 225.0, 75.0])
        dead = _decide(dispatcher, demand=300.0, capacity_now=np.zeros(3))
        assert decision.unserved_kw == pytest.approx(0.0)
        assert dead.unserved_kw == pytest.approx(300.0)

    def test_wan_budget_bounds_migration_without_losing_load(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        decision = _decide(
            dispatcher, demand=500.0, load=[500.0, 0.0, 0.0], wan_budget_kw=50.0
        )
        assert decision.moved_kw <= 50.0 + 1e-9
        # Load that could not move stayed on its old site; nothing vanished.
        assert float(decision.compute_kw.sum()) == pytest.approx(500.0)
        assert np.all(decision.compute_kw <= dispatcher._capacity_nominal + 1e-9)
        assert decision.unserved_kw == pytest.approx(0.0)

    def test_battery_discharge_never_overdraws_the_level(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        level = np.array([10.0, 0.0, 5.0])
        decision = _decide(dispatcher, demand=500.0, level=level)
        assert np.all(decision.level_kwh >= -1e-9)
        assert np.all(decision.discharge_kw <= level / dispatcher.config.step_hours + 1e-9)
        # Energy balances per site: green + discharge + brown covers facility.
        facility = 1.25 * (decision.compute_kw + decision.migrate_kw)
        supplied = decision.green_direct_kw + decision.discharge_kw + decision.brown_kw
        assert supplied == pytest.approx(facility)

    def test_surplus_green_charges_within_battery_capacity(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        production = np.array([1000.0, 0.0, 0.0])
        decision = _decide(dispatcher, demand=100.0, production=production)
        capacity = np.array([site.battery_kwh for site in dispatcher.sites])
        assert np.all(decision.level_kwh <= capacity + 1e-9)
        assert np.all(decision.charge_kw >= -1e-9)
        # Whatever did not fit is exported, not destroyed.
        surplus = production - decision.green_direct_kw
        assert decision.export_kw + decision.charge_kw == pytest.approx(surplus)

    def test_tiered_shedding_fills_cheapest_tier_first(self):
        config = DispatchConfig(shed_tiers=((0.6, 20.0), (0.4, 5.0)))
        dispatcher = GreedyFallbackDispatcher(
            _sites(caps=(300.0, 150.0, 50.0)), config=config
        )
        decision = _decide(dispatcher, demand=1000.0)
        assert decision.unserved_kw == pytest.approx(500.0)
        # The 5 $/kWh tier absorbs its full 40 % share before the 20 $/kWh
        # tier sheds anything.
        assert decision.unserved_by_tier == pytest.approx([100.0, 400.0])

    def test_untiered_decisions_have_no_tier_split(self):
        dispatcher = GreedyFallbackDispatcher(_sites())
        assert _decide(dispatcher, demand=1500.0).unserved_by_tier is None

    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError):
            GreedyFallbackDispatcher([])


class TestShedTierValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DispatchConfig(shed_tiers=((0.6, 20.0), (0.3, 5.0)))

    def test_fractions_and_penalties_must_be_positive(self):
        with pytest.raises(ValueError):
            DispatchConfig(shed_tiers=((1.2, 20.0), (-0.2, 5.0)))
        with pytest.raises(ValueError, match="penalties"):
            DispatchConfig(shed_tiers=((0.5, 20.0), (0.5, 0.0)))
        with pytest.raises(ValueError, match="at least one"):
            DispatchConfig(shed_tiers=())

    def test_operate_config_normalises_tiers(self):
        config = OperateConfig(steps=4, shed_tiers=[[0.6, 20], [0.4, 5]])
        assert config.shed_tiers == ((0.6, 20.0), (0.4, 5.0))
        dispatch = config.dispatch_config(total_capacity_kw=1000.0)
        assert dispatch.shed_tiers == ((0.6, 20.0), (0.4, 5.0))


@pytest.mark.skipif(not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable")
class TestSolverOutageReplay:
    def _harness(self, faults=None, steps=24, horizon=8, **config_kwargs):
        config = OperateConfig(steps=steps, horizon_hours=horizon, **config_kwargs)
        needed = steps + config.horizon_steps + config.reforecast_every
        hours = np.arange(needed, dtype=float)

        def site(name, phase, cap):
            production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None)
            return SiteAsset(
                name=name,
                capacity_kw=cap,
                battery_kwh=0.3 * cap,
                energy_price_per_kwh=0.1,
                pue=np.full(needed, 1.25),
                production_kw=production * cap * 1.8,
            )

        sites = [
            site(name, phase, 600.0)
            for name, phase in zip(SITE_NAMES, (0.0, 10.0, 18.0))
        ]
        trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=1000.0)
        return ReplayHarness(sites, trace, config, total_capacity_kw=1000.0, faults=faults)

    def test_outage_replay_completes_with_a_degraded_record(self):
        faults = FaultSpec(solver_outages=(SolverOutage(start_step=6, duration_steps=3),))
        outcome = self._harness(faults=faults).run("forecast")
        assert outcome.stats["greedy_fallback_steps"] == 3
        assert outcome.degraded
        for decision in outcome.decisions[6:9]:
            assert decision.degraded
        for decision in outcome.decisions[:6] + outcome.decisions[9:]:
            assert not decision.degraded
        record = outcome.to_record()
        assert record["degraded"] is True
        assert record["greedy_fallback_steps"] == 3

    def test_outage_costs_at_least_the_nominal_replay(self):
        faults = FaultSpec(solver_outages=(SolverOutage(start_step=6, duration_steps=3),))
        nominal = self._harness().run("forecast")
        degraded = self._harness(faults=faults).run("forecast")
        assert not nominal.degraded
        assert degraded.cost_usd >= nominal.cost_usd - 1e-6

    def test_disabled_fallback_raises_dispatch_error(self):
        faults = FaultSpec(solver_outages=(SolverOutage(start_step=6, duration_steps=1),))
        harness = self._harness(faults=faults, greedy_fallback=False)
        with pytest.raises(DispatchError):
            harness.run("forecast")

    def test_solver_fault_still_recovers_without_the_greedy_path(self):
        """A transient fault climbs the ladder; only an outage exhausts it."""
        faults = FaultSpec(solver_faults=(9,))
        outcome = self._harness(faults=faults).run("forecast")
        assert outcome.stats["fallback_rebuilds"] == 1
        assert outcome.stats["greedy_fallback_steps"] == 0
        assert not outcome.degraded

    def test_tiered_replay_matches_untiered_when_nothing_is_shed(self):
        plain = self._harness().run("forecast")
        tiered = self._harness(shed_tiers=[[0.6, 20.0], [0.4, 5.0]]).run("forecast")
        assert plain.unserved_kwh == pytest.approx(0.0, abs=1e-6)
        assert tiered.cost_usd == pytest.approx(plain.cost_usd, rel=1e-6)

    def test_tiered_shedding_is_cheaper_under_a_full_fleet_outage(self):
        """Pricing 40 % of demand at 5 $/kWh must beat 10 $/kWh across the
        board once an outage forces real shedding."""
        faults = FaultSpec(
            site_outages=tuple(
                SiteOutage(site=index, start_step=6, duration_steps=3)
                for index in range(len(SITE_NAMES))
            )
        )
        flat = self._harness(faults=faults).run("forecast")
        tiered = self._harness(
            faults=faults, shed_tiers=[[0.6, 10.0], [0.4, 5.0]]
        ).run("forecast")
        assert flat.unserved_kwh > 0
        assert tiered.cost_usd < flat.cost_usd
