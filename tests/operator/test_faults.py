"""Fault injection: spec semantics, faulted replays, solver resilience ladder."""

import json

import numpy as np
import pytest

from repro.lpsolver import highs_backend
from repro.operator import (
    DemandSurge,
    FaultSpec,
    ForecastBlackout,
    OperateConfig,
    ReplayHarness,
    SiteAsset,
    SiteOutage,
    TrafficModel,
    WanDegradation,
    fragility,
)

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)

SITE_NAMES = ("alpha", "beta", "gamma")


def _harness(faults=None, steps=24, horizon=8, **config_kwargs):
    config = OperateConfig(steps=steps, horizon_hours=horizon, **config_kwargs)
    needed = steps + config.horizon_steps + config.reforecast_every
    hours = np.arange(needed, dtype=float)

    def site(name, phase, cap):
        production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None)
        return SiteAsset(
            name=name,
            capacity_kw=cap,
            battery_kwh=0.3 * cap,
            energy_price_per_kwh=0.1,
            pue=np.full(needed, 1.25),
            production_kw=production * cap * 1.8,
        )

    sites = [site(name, phase, 600.0) for name, phase in zip(SITE_NAMES, (0.0, 10.0, 18.0))]
    trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=1000.0)
    return ReplayHarness(sites, trace, config, total_capacity_kw=1000.0, faults=faults)


class TestFaultSpec:
    def test_round_trips_through_json(self):
        spec = FaultSpec(
            site_outages=(SiteOutage(site="beta", start_step=4, duration_steps=3),),
            wan_degradations=(WanDegradation(start_step=2, duration_steps=2, factor=0.5),),
            forecast_blackouts=(ForecastBlackout(start_step=8, duration_steps=4),),
            demand_surges=(DemandSurge(start_step=1, duration_steps=6, multiplier=1.4),),
            solver_faults=(7, 11),
        )
        rebuilt = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_empty_spec_round_trips_and_is_empty(self):
        assert FaultSpec().is_empty
        assert FaultSpec.from_dict({}).is_empty
        assert FaultSpec().to_dict() == {}

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultSpec.from_dict({"meteor_strikes": []})

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SiteOutage(site=0, start_step=-1, duration_steps=2)
        with pytest.raises(ValueError):
            ForecastBlackout(start_step=0, duration_steps=0)
        with pytest.raises(ValueError):
            WanDegradation(start_step=0, duration_steps=2, factor=1.0)
        with pytest.raises(ValueError):
            DemandSurge(start_step=0, duration_steps=2, multiplier=0.0)

    def test_per_step_queries(self):
        spec = FaultSpec(
            site_outages=(SiteOutage(site=1, start_step=4, duration_steps=2),),
            wan_degradations=(WanDegradation(start_step=3, duration_steps=4, factor=0.25),),
            forecast_blackouts=(ForecastBlackout(start_step=5, duration_steps=1),),
            demand_surges=(
                DemandSurge(start_step=0, duration_steps=10, multiplier=1.5),
                DemandSurge(start_step=5, duration_steps=2, multiplier=2.0),
            ),
        )
        assert list(spec.capacity_factors(4, SITE_NAMES)) == [1.0, 0.0, 1.0]
        assert list(spec.capacity_factors(6, SITE_NAMES)) == [1.0, 1.0, 1.0]
        assert spec.wan_factor(3) == 0.25
        assert spec.wan_factor(7) == 1.0
        assert spec.blackout(5) and not spec.blackout(6)
        assert spec.demand_multiplier(5) == pytest.approx(3.0)  # surges compound
        assert spec.demand_multiplier(12) == 1.0
        mask = spec.outage_mask(8, SITE_NAMES)
        assert mask.sum() == 2 and mask[1, 4] and mask[1, 5]

    def test_site_resolution_by_name_and_index(self):
        by_name = SiteOutage(site="gamma", start_step=0, duration_steps=1)
        by_index = SiteOutage(site=2, start_step=0, duration_steps=1)
        assert by_name.resolve(SITE_NAMES) == by_index.resolve(SITE_NAMES) == 2
        with pytest.raises(ValueError, match="unknown site"):
            SiteOutage(site="delta", start_step=0, duration_steps=1).resolve(SITE_NAMES)
        with pytest.raises(ValueError, match="out of range"):
            SiteOutage(site=9, start_step=0, duration_steps=1).resolve(SITE_NAMES)


class TestFaultedReplay:
    def test_empty_faults_change_nothing(self):
        nominal = _harness().run("forecast")
        with_empty = _harness(faults=FaultSpec()).run("forecast")
        assert with_empty.cost_usd == nominal.cost_usd
        assert with_empty.stats == nominal.stats

    def test_full_fleet_outage_is_counted_as_unserved(self):
        """With every site down, demand in the window can only go unserved."""
        faults = FaultSpec(
            site_outages=tuple(
                SiteOutage(site=index, start_step=6, duration_steps=3)
                for index in range(len(SITE_NAMES))
            )
        )
        nominal = _harness().run("forecast")
        faulted = _harness(faults=faults).run("forecast")
        assert faulted.unserved_kwh > nominal.unserved_kwh
        assert faulted.sla_violation_steps >= 3
        # Each outage step must strand at least that step's realized demand.
        demand = _harness().trace.demand_kw
        assert faulted.unserved_kwh >= 0.99 * float(np.sum(demand[6:9]))

    def test_single_outage_degrades_gracefully(self):
        faults = FaultSpec(
            site_outages=(SiteOutage(site="alpha", start_step=4, duration_steps=4),)
        )
        harness = _harness(faults=faults)
        outcome = harness.run("forecast")
        # The outage site computes nothing during its window.
        for decision in outcome.decisions[4:8]:
            assert decision.compute_kw[0] == pytest.approx(0.0, abs=1e-9)
        # Outside the window the fleet returns to nominal bounds.
        assert outcome.decisions[10].compute_kw[0] >= 0.0
        assert outcome.cost_usd >= _harness().run("forecast").cost_usd - 1e-6

    def test_wan_degradation_blocks_migration(self):
        faults = FaultSpec(
            wan_degradations=(WanDegradation(start_step=5, duration_steps=3, factor=0.0),)
        )
        outcome = _harness(faults=faults).run("forecast")
        for decision in outcome.decisions[5:8]:
            assert decision.moved_kw == pytest.approx(0.0, abs=1e-6)

    def test_demand_surge_raises_cost(self):
        faults = FaultSpec(
            demand_surges=(DemandSurge(start_step=0, duration_steps=24, multiplier=1.5),)
        )
        nominal = _harness().run("forecast")
        surged = _harness(faults=faults).run("forecast")
        assert surged.cost_usd > nominal.cost_usd

    def test_forecast_blackout_counts_and_only_hits_forecast_policy(self):
        faults = FaultSpec(
            forecast_blackouts=(ForecastBlackout(start_step=8, duration_steps=5),)
        )
        kwargs = dict(
            forecast_error=0.3, energy_forecast="noisy-oracle", load_forecast="noisy-oracle"
        )
        blind = _harness(faults=faults, **kwargs).run("forecast")
        sighted = _harness(**kwargs).run("forecast")
        assert blind.stats["forecast_blackout_steps"] == 5
        assert blind.cost_usd != sighted.cost_usd
        # The oracle policy ignores the forecasting service entirely.
        oracle_faulted = _harness(faults=faults, **kwargs).run("oracle")
        oracle_nominal = _harness(**kwargs).run("oracle")
        assert oracle_faulted.stats["forecast_blackout_steps"] == 0
        assert oracle_faulted.cost_usd == pytest.approx(oracle_nominal.cost_usd, rel=1e-12)

    def test_fragility_score_shape(self):
        faults = FaultSpec(
            site_outages=(SiteOutage(site=0, start_step=4, duration_steps=4),),
            forecast_blackouts=(ForecastBlackout(start_step=10, duration_steps=2),),
        )
        nominal = _harness().run("forecast")
        faulted = _harness(faults=faults).run("forecast")
        score = fragility(faulted, nominal)
        assert score["cost_usd"] == pytest.approx(faulted.cost_usd)
        assert score["cost_blowup_usd"] == pytest.approx(faulted.cost_usd - nominal.cost_usd)
        assert score["unserved_delta_kwh"] == pytest.approx(
            faulted.unserved_kwh - nominal.unserved_kwh
        )
        assert score["forecast_blackout_steps"] == 2


class TestSolverResilienceLadder:
    def test_injected_fault_triggers_retry_then_cold_rebuild(self):
        faults = FaultSpec(solver_faults=(9,))
        outcome = _harness(faults=faults).run("forecast")
        assert outcome.stats["slide_retries"] == 1
        assert outcome.stats["fallback_rebuilds"] == 1
        # Initial load plus exactly one fallback rebuild.
        assert outcome.stats["cold_loads"] == 2

    def test_cold_rebuild_reproduces_the_uninjected_objectives(self):
        """The ladder must never change the numbers, only survive the failure."""
        nominal = _harness().run("forecast")
        injected = _harness(faults=FaultSpec(solver_faults=(5, 13))).run("forecast")
        assert injected.stats["fallback_rebuilds"] == 2
        assert injected.cost_usd == pytest.approx(nominal.cost_usd, rel=1e-9)
        for clean, faulted in zip(nominal.decisions, injected.decisions):
            assert faulted.objective == pytest.approx(clean.objective, rel=1e-9)

    def test_uninjected_steps_never_use_the_ladder(self):
        outcome = _harness().run("forecast")
        assert outcome.stats["slide_retries"] == 0
        assert outcome.stats["fallback_rebuilds"] == 0
        assert outcome.stats["cold_loads"] == 1

    def test_fault_counters_survive_into_the_record(self):
        faults = FaultSpec(solver_faults=(3,))
        record = _harness(faults=faults).run("forecast").to_record()
        assert record["slide_retries"] == 1
        assert record["fallback_rebuilds"] == 1
