"""Traffic synthesis: determinism, shapes, events, fleet mapping."""

import numpy as np
import pytest

from repro.operator.traffic import (
    Region,
    TrafficEvent,
    TrafficModel,
    default_regions,
)
from repro.simulation.workload import (
    VMSpec,
    fleet_counts,
    migration_state_mb,
    migration_transfer_hours,
)


class TestRegionsAndEvents:
    def test_default_regions_weights_normalised(self):
        regions = default_regions(4)
        assert len(regions) == 4
        assert sum(r.weight for r in regions) == pytest.approx(1.0)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region(name="x", longitude_deg=0.0, weight=0.0)
        with pytest.raises(ValueError):
            Region(name="x", longitude_deg=0.0, weight=1.0, diurnal_amplitude=1.5)

    def test_event_factors(self):
        hours = np.arange(10, dtype=float)
        crowd = TrafficEvent("flash_crowd", "emea", 2.0, 3.0, 0.5)
        outage = TrafficEvent("outage", "emea", 2.0, 3.0, 1.0)
        np.testing.assert_allclose(crowd.factor(hours)[2:5], 1.5)
        np.testing.assert_allclose(crowd.factor(hours)[5:], 1.0)
        np.testing.assert_allclose(outage.factor(hours)[2:5], 0.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TrafficEvent("surge", "emea", 0.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            TrafficEvent("outage", "emea", 0.0, 0.0, 0.1)


class TestTrafficModel:
    def test_same_seed_same_trace(self):
        a = TrafficModel(seed=9).synthesize(96, total_capacity_kw=10_000.0)
        b = TrafficModel(seed=9).synthesize(96, total_capacity_kw=10_000.0)
        np.testing.assert_array_equal(a.demand_kw, b.demand_kw)
        assert a.events == b.events

    def test_different_seed_different_trace(self):
        a = TrafficModel(seed=9).synthesize(96, total_capacity_kw=10_000.0)
        b = TrafficModel(seed=10).synthesize(96, total_capacity_kw=10_000.0)
        assert not np.allclose(a.demand_kw, b.demand_kw)

    def test_utilization_targets(self):
        model = TrafficModel(
            seed=1,
            base_utilization=0.5,
            peak_utilization=0.9,
            noise_std=0.0,
            flash_crowds_per_week=0.0,
            outages_per_week=0.0,
        )
        trace = model.synthesize(336, total_capacity_kw=1000.0)
        assert trace.utilization.mean() <= 0.5 + 1e-6
        assert trace.utilization.max() <= 0.9 + 1e-6
        assert trace.utilization.min() > 0.0

    def test_diurnal_shape_moves_demand(self):
        model = TrafficModel(
            seed=1, noise_std=0.0, flash_crowds_per_week=0.0, outages_per_week=0.0
        )
        trace = model.synthesize(48, total_capacity_kw=1000.0)
        assert trace.demand_kw.max() > 1.1 * trace.demand_kw.min()

    def test_events_change_demand(self):
        calm = TrafficModel(
            seed=4, flash_crowds_per_week=0.0, outages_per_week=0.0
        ).synthesize(168, total_capacity_kw=1000.0)
        eventful = TrafficModel(
            seed=4, flash_crowds_per_week=20.0, outages_per_week=10.0
        ).synthesize(168, total_capacity_kw=1000.0)
        assert eventful.events
        assert not np.allclose(calm.demand_kw, eventful.demand_kw)

    def test_reference_window_pins_operating_actuals(self):
        # Horizon padding (extra trailing steps for the forecasters) must not
        # change the operating period's demand: normalisation statistics and
        # the event draw are computed over the reference window only.
        model = TrafficModel(seed=6)
        short = model.synthesize(168 + 24, reference_steps=168, total_capacity_kw=1000.0)
        long = model.synthesize(168 + 48, reference_steps=168, total_capacity_kw=1000.0)
        np.testing.assert_array_equal(short.demand_kw[:168], long.demand_kw[:168])
        assert short.events == long.events

    def test_reference_window_validation(self):
        model = TrafficModel(seed=6)
        with pytest.raises(ValueError):
            model.synthesize(24, reference_steps=0)
        with pytest.raises(ValueError):
            model.synthesize(24, reference_steps=48)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(base_utilization=0.0)
        with pytest.raises(ValueError):
            TrafficModel(base_utilization=0.9, peak_utilization=0.5)
        model = TrafficModel(seed=1)
        with pytest.raises(ValueError):
            model.synthesize(0)
        with pytest.raises(ValueError):
            model.synthesize(10, total_capacity_kw=0.0)


class TestFleetMapping:
    def test_trace_fleet_counts(self):
        trace = TrafficModel(seed=2).synthesize(24, total_capacity_kw=300.0)
        counts = trace.fleet_counts()
        spec = VMSpec(name="template")
        assert counts.shape == (24,)
        assert np.all(counts >= np.floor(trace.demand_kw / spec.power_kw))

    def test_fleet_counts_ceil(self):
        spec = VMSpec(name="x")  # 30 W per VM
        np.testing.assert_array_equal(
            fleet_counts(np.array([0.0, 0.03, 0.031]), spec), [0, 1, 2]
        )
        with pytest.raises(ValueError):
            fleet_counts(np.array([-1.0]), spec)

    def test_migration_state_and_transfer(self):
        spec = VMSpec(name="x")  # 512 MB per 0.03 kW
        state = migration_state_mb(0.03, spec)
        assert state == pytest.approx(512.0)
        assert migration_transfer_hours(0.03, spec, 512.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            migration_state_mb(-1.0, spec)
        with pytest.raises(ValueError):
            migration_transfer_hours(1.0, spec, 0.0)
