"""FaultSpec canonicalisation: merges, idempotency, vectorized queries."""

import json

import numpy as np
import pytest

from repro.operator import (
    DemandSurge,
    FaultSpec,
    ForecastBlackout,
    SiteOutage,
    SolverOutage,
    WanDegradation,
)

SITE_NAMES = ("alpha", "beta", "gamma")


class TestCanonicalisation:
    def test_same_site_overlapping_outages_merge(self):
        spec = FaultSpec(
            site_outages=(
                SiteOutage(site="beta", start_step=4, duration_steps=3),
                SiteOutage(site="beta", start_step=6, duration_steps=4),
                SiteOutage(site="beta", start_step=10, duration_steps=2),  # adjacent
                SiteOutage(site="alpha", start_step=5, duration_steps=1),
            )
        )
        assert spec.site_outages == (
            SiteOutage(site="alpha", start_step=5, duration_steps=1),
            SiteOutage(site="beta", start_step=4, duration_steps=8),
        )

    def test_distinct_sites_do_not_merge(self):
        spec = FaultSpec(
            site_outages=(
                SiteOutage(site=0, start_step=0, duration_steps=4),
                SiteOutage(site=1, start_step=2, duration_steps=4),
            )
        )
        assert len(spec.site_outages) == 2

    def test_construction_order_is_irrelevant(self):
        outages = [
            SiteOutage(site="beta", start_step=6, duration_steps=4),
            SiteOutage(site="alpha", start_step=0, duration_steps=2),
            SiteOutage(site="beta", start_step=4, duration_steps=3),
        ]
        forward = FaultSpec(site_outages=tuple(outages))
        backward = FaultSpec(site_outages=tuple(reversed(outages)))
        assert forward == backward
        assert forward.to_dict() == backward.to_dict()

    def test_wan_overlaps_become_min_factor_segments(self):
        spec = FaultSpec(
            wan_degradations=(
                WanDegradation(start_step=0, duration_steps=6, factor=0.5),
                WanDegradation(start_step=4, duration_steps=4, factor=0.25),
            )
        )
        assert spec.wan_degradations == (
            WanDegradation(start_step=0, duration_steps=4, factor=0.5),
            WanDegradation(start_step=4, duration_steps=4, factor=0.25),
        )
        # Semantics preserved: the per-step factor is unchanged.
        for step, expected in ((0, 0.5), (3, 0.5), (4, 0.25), (7, 0.25), (8, 1.0)):
            assert spec.wan_factor(step) == expected

    def test_surge_overlaps_become_product_segments(self):
        spec = FaultSpec(
            demand_surges=(
                DemandSurge(start_step=0, duration_steps=10, multiplier=1.5),
                DemandSurge(start_step=5, duration_steps=2, multiplier=2.0),
            )
        )
        assert [s.multiplier for s in spec.demand_surges] == pytest.approx(
            [1.5, 3.0, 1.5]
        )
        assert [(s.start_step, s.duration_steps) for s in spec.demand_surges] == [
            (0, 5),
            (5, 2),
            (7, 3),
        ]

    def test_blackouts_and_solver_windows_merge(self):
        spec = FaultSpec(
            forecast_blackouts=(
                ForecastBlackout(start_step=0, duration_steps=3),
                ForecastBlackout(start_step=3, duration_steps=2),
            ),
            solver_outages=(
                SolverOutage(start_step=10, duration_steps=2),
                SolverOutage(start_step=11, duration_steps=4),
            ),
            solver_faults=(9, 3, 9, 5),
        )
        assert spec.forecast_blackouts == (
            ForecastBlackout(start_step=0, duration_steps=5),
        )
        assert spec.solver_outages == (SolverOutage(start_step=10, duration_steps=5),)
        assert spec.solver_faults == (3, 5, 9)

    def test_canonical_form_is_a_fixed_point(self):
        spec = FaultSpec(
            site_outages=(
                SiteOutage(site="beta", start_step=4, duration_steps=3),
                SiteOutage(site="beta", start_step=5, duration_steps=6),
            ),
            wan_degradations=(
                WanDegradation(start_step=0, duration_steps=6, factor=0.5),
                WanDegradation(start_step=4, duration_steps=4, factor=0.25),
            ),
            demand_surges=(
                DemandSurge(start_step=0, duration_steps=10, multiplier=1.5),
                DemandSurge(start_step=5, duration_steps=2, multiplier=2.0),
            ),
            forecast_blackouts=(
                ForecastBlackout(start_step=0, duration_steps=3),
                ForecastBlackout(start_step=2, duration_steps=2),
            ),
            solver_outages=(SolverOutage(start_step=1, duration_steps=2),),
        )
        again = FaultSpec(
            site_outages=spec.site_outages,
            wan_degradations=spec.wan_degradations,
            forecast_blackouts=spec.forecast_blackouts,
            demand_surges=spec.demand_surges,
            solver_faults=spec.solver_faults,
            solver_outages=spec.solver_outages,
        )
        assert again == spec

    def test_equivalent_programs_compare_and_serialize_identically(self):
        split = FaultSpec(
            site_outages=(
                SiteOutage(site=0, start_step=0, duration_steps=2),
                SiteOutage(site=0, start_step=2, duration_steps=2),
            )
        )
        joined = FaultSpec(
            site_outages=(SiteOutage(site=0, start_step=0, duration_steps=4),)
        )
        assert split == joined
        assert split.to_dict() == joined.to_dict()


class TestRoundTrip:
    def test_full_spec_round_trips_through_json(self):
        spec = FaultSpec(
            site_outages=(SiteOutage(site="beta", start_step=4, duration_steps=3),),
            wan_degradations=(
                WanDegradation(start_step=2, duration_steps=2, factor=0.5),
            ),
            forecast_blackouts=(ForecastBlackout(start_step=8, duration_steps=4),),
            demand_surges=(DemandSurge(start_step=1, duration_steps=6, multiplier=1.4),),
            solver_faults=(7, 11),
            solver_outages=(SolverOutage(start_step=12, duration_steps=2),),
        )
        rebuilt = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_overlapping_input_round_trips_to_the_canonical_form(self):
        spec = FaultSpec(
            demand_surges=(
                DemandSurge(start_step=0, duration_steps=10, multiplier=1.5),
                DemandSurge(start_step=5, duration_steps=2, multiplier=2.0),
            )
        )
        rebuilt = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_solver_outage_window_validation(self):
        with pytest.raises(ValueError):
            SolverOutage(start_step=-1, duration_steps=2)
        with pytest.raises(ValueError):
            SolverOutage(start_step=0, duration_steps=0)

    def test_solver_outages_participate_in_is_empty(self):
        spec = FaultSpec(solver_outages=(SolverOutage(start_step=0, duration_steps=1),))
        assert not spec.is_empty


class TestVectorizedQueries:
    @pytest.fixture()
    def spec(self):
        return FaultSpec(
            site_outages=(
                SiteOutage(site="beta", start_step=4, duration_steps=2),
                SiteOutage(site=0, start_step=1, duration_steps=3),
            ),
            wan_degradations=(
                WanDegradation(start_step=3, duration_steps=4, factor=0.25),
                WanDegradation(start_step=5, duration_steps=6, factor=0.5),
            ),
            forecast_blackouts=(ForecastBlackout(start_step=5, duration_steps=3),),
            demand_surges=(
                DemandSurge(start_step=0, duration_steps=10, multiplier=1.5),
                DemandSurge(start_step=5, duration_steps=2, multiplier=2.0),
            ),
            solver_outages=(SolverOutage(start_step=6, duration_steps=4),),
        )

    def test_matrix_matches_scalar_queries(self, spec):
        steps = 16
        matrix = spec.capacity_factor_matrix(steps, SITE_NAMES)
        wan = spec.wan_factors(steps)
        blackout = spec.blackout_mask(steps)
        multipliers = spec.demand_multipliers(steps)
        for step in range(steps):
            assert np.array_equal(
                matrix[:, step], spec.capacity_factors(step, SITE_NAMES)
            )
            assert wan[step] == spec.wan_factor(step)
            assert bool(blackout[step]) == spec.blackout(step)
            assert multipliers[step] == pytest.approx(spec.demand_multiplier(step))

    def test_solver_outage_steps(self, spec):
        assert list(spec.solver_outage_steps(16)) == [6, 7, 8, 9]
        assert list(spec.solver_outage_steps(8)) == [6, 7]
        assert list(FaultSpec().solver_outage_steps(8)) == []

    def test_windows_clip_at_the_replay_end(self, spec):
        matrix = spec.capacity_factor_matrix(5, SITE_NAMES)
        assert matrix.shape == (3, 5)
        assert list(spec.wan_factors(4)) == [1.0, 1.0, 1.0, 0.25]
