"""Replay harness: policies, regret, determinism, record shape."""

import json

import numpy as np
import pytest

from repro.lpsolver import highs_backend
from repro.operator import (
    OperateConfig,
    ReplayHarness,
    SiteAsset,
    TrafficModel,
    regret,
)

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)


def _setup(steps=24, horizon=8, **config_kwargs):
    config = OperateConfig(steps=steps, horizon_hours=horizon, **config_kwargs)
    needed = steps + config.horizon_steps + config.reforecast_every
    hours = np.arange(needed, dtype=float)

    def site(name, phase, cap):
        production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None)
        return SiteAsset(
            name=name,
            capacity_kw=cap,
            battery_kwh=0.3 * cap,
            energy_price_per_kwh=0.1,
            pue=np.full(needed, 1.25),
            production_kw=production * cap * 1.8,
        )

    sites = [site("alpha", 0.0, 600.0), site("beta", 10.0, 600.0), site("gamma", 18.0, 600.0)]
    trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=1000.0)
    return ReplayHarness(sites, trace, config, total_capacity_kw=1000.0)


class TestReplay:
    def test_deterministic_across_runs(self):
        first = _setup(forecast_error=0.2, energy_forecast="noisy-oracle").run("forecast")
        second = _setup(forecast_error=0.2, energy_forecast="noisy-oracle").run("forecast")
        assert first.cost_usd == second.cost_usd
        assert first.brown_kwh == second.brown_kwh
        assert first.stats == second.stats

    def test_zero_error_noisy_oracle_matches_oracle(self):
        harness = _setup(
            forecast_error=0.0,
            energy_forecast="noisy-oracle",
            load_forecast="noisy-oracle",
        )
        forecast = harness.run("forecast")
        oracle = harness.run("oracle")
        assert forecast.cost_usd == pytest.approx(oracle.cost_usd, rel=1e-9)
        assert regret(forecast, oracle)["cost_usd"] == pytest.approx(0.0, abs=1e-6)

    def test_incremental_dispatch_counters(self):
        outcome = _setup(steps=20).run("forecast")
        assert outcome.stats["cold_loads"] == 1
        assert outcome.stats["slides"] == 19
        assert outcome.stats["lp_solves"] == 20

    def test_energy_conservation_bounds(self):
        outcome = _setup(steps=24).run("oracle")
        assert outcome.brown_kwh >= 0.0
        assert outcome.green_kwh >= 0.0
        assert 0.0 <= outcome.green_fraction <= 1.0

    def test_reforecast_cadence_changes_behaviour(self):
        hourly = _setup(forecast_error=0.3, energy_forecast="noisy-oracle",
                        load_forecast="noisy-oracle").run("forecast")
        stale = _setup(forecast_error=0.3, energy_forecast="noisy-oracle",
                       load_forecast="noisy-oracle", reforecast_every=6).run("forecast")
        # Same trace, same noise streams — only the cadence differs, and the
        # oracle is unaffected by it.
        assert hourly.cost_usd != stale.cost_usd

    def test_record_is_json_ready(self):
        outcome = _setup(steps=12).run("forecast")
        record = outcome.to_record()
        parsed = json.loads(json.dumps(record))
        assert parsed["policy"] == "forecast"
        assert parsed["lp_solves"] == 12
        assert set(parsed["site_brown_kwh"]) == {"alpha", "beta", "gamma"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _setup(steps=4).run("psychic")

    def test_trace_must_cover_replay(self):
        config = OperateConfig(steps=100, horizon_hours=8)
        trace = TrafficModel(seed=1).synthesize(20, total_capacity_kw=1000.0)
        hours = np.arange(20, dtype=float)
        site = SiteAsset(
            name="a", capacity_kw=1000.0, battery_kwh=0.0,
            energy_price_per_kwh=0.1, pue=np.full(20, 1.2),
            production_kw=np.zeros(20),
        )
        with pytest.raises(ValueError):
            ReplayHarness([site], trace, config, total_capacity_kw=1000.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OperateConfig(steps=0)
        with pytest.raises(ValueError):
            OperateConfig(reforecast_every=0)
        with pytest.raises(ValueError):
            OperateConfig(forecast_error=-0.1)
        with pytest.raises(ValueError):
            OperateConfig(horizon_hours=1)
