"""The operate workflow end to end: spec, runner, CLI, executor determinism."""

import json

import pytest

from repro.cli import main as cli_main
from repro.scenarios import (
    ExperimentRunner,
    OPERATE_DEFAULTS,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)


def _smoke_sweep():
    return get_scenario("operate-smoke").build()


@pytest.fixture(scope="module")
def smoke_results():
    return ExperimentRunner().run(_smoke_sweep())


class TestOperateSpec:
    def test_operate_defaults_are_json_scalars(self):
        json.dumps(OPERATE_DEFAULTS)
        assert OPERATE_DEFAULTS["steps"] == 168
        assert OPERATE_DEFAULTS["horizon_hours"] == 24

    def test_unknown_operate_knob_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(workflow="operate", operate={"time_travel": True})

    def test_round_trip_preserves_operate_block(self):
        spec = ScenarioSpec(
            name="x", workflow="operate", operate={"steps": 24, "forecast_error": 0.2}
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.operate_knobs()["steps"] == 24
        assert again.operate_knobs()["horizon_hours"] == 24  # default filled in

    def test_operate_knobs_change_content_hash(self):
        base = ScenarioSpec(name="x", workflow="operate")
        tweaked = base.with_updates(**{"operate.forecast_error": 0.3})
        assert base.content_hash() != tweaked.content_hash()

    def test_operate_block_invisible_to_other_workflows(self):
        # Pre-operate artifact hashes must stay valid: a plan spec hashes the
        # same whether or not the (ignored) operate block is present.
        plan = ScenarioSpec(name="x", workflow="plan")
        with_block = ScenarioSpec(name="x", workflow="plan", operate={"steps": 24})
        assert plan.content_hash() == with_block.content_hash()
        assert "operate" not in plan.hash_payload()

    def test_problem_signature_ignores_operate(self):
        base = ScenarioSpec(name="x", workflow="operate")
        tweaked = base.with_updates(**{"operate.forecast_error": 0.3})
        assert base.problem_signature() == tweaked.problem_signature()

    def test_operate_scenarios_registered(self):
        names = scenario_names()
        for expected in ("operate-fig06", "operate-forecast", "operate-policy", "operate-smoke"):
            assert expected in names


class TestOperateRunner:
    def test_smoke_records_complete(self, smoke_results):
        assert len(smoke_results) == 2
        for point in smoke_results:
            record = point.record
            assert record["workflow"] == "operate"
            assert record["feasible"]
            assert record["steps"] == 24
            assert record["lp_solves"] == 24
            assert record["cold_loads"] == 1
            assert record["slides"] == 23
            assert record["forecast"]["policy"] == "forecast"
            assert record["oracle"]["policy"] == "oracle"
            json.dumps(record)  # artifact-cache ready

    def test_zero_error_point_has_zero_regret(self, smoke_results):
        exact = smoke_results.find(**{"operate.forecast_error": 0.0})
        assert exact.record["regret_cost_usd"] == pytest.approx(0.0, abs=1e-6)
        noisy = smoke_results.find(**{"operate.forecast_error": 0.25})
        assert noisy.record["forecast_cost_usd"] != exact.record["forecast_cost_usd"]

    def test_thread_executor_matches_serial(self, smoke_results):
        threaded = ExperimentRunner(executor="thread", workers=2).run(_smoke_sweep())
        for a, b in zip(smoke_results, threaded):
            assert a.record == b.record

    @pytest.mark.multicore
    def test_process_executor_matches_serial(self, smoke_results):
        processed = ExperimentRunner(executor="process", workers=2).run(_smoke_sweep())
        for a, b in zip(smoke_results, processed):
            assert a.record == b.record

    def test_artifact_cache_serves_second_run(self, tmp_path, smoke_results):
        cache_dir = tmp_path / "cache"
        runner = ExperimentRunner(cache_dir=cache_dir)
        first = runner.run(_smoke_sweep())
        assert first.cache_hits == 0
        second = ExperimentRunner(cache_dir=cache_dir).run(_smoke_sweep())
        assert second.cache_hits == 2
        for a, b in zip(first, second):
            assert a.record == b.record
        for a, b in zip(smoke_results, second):
            assert a.record == b.record


class TestOperateAnalysis:
    def test_regret_table_rows(self, smoke_results):
        from repro.analysis import format_table, operator_regret_table

        rows = operator_regret_table(smoke_results)
        assert len(rows) == 2
        by_error = {row["operate.forecast_error"]: row for row in rows}
        assert by_error[0.0]["regret_cost_usd"] == pytest.approx(0.0, abs=1e-6)
        assert by_error[0.25]["regret_cost_usd"] > 0.0
        assert format_table(rows)  # renders without error


class TestOperateCli:
    def test_cli_operate_smoke(self, capsys):
        exit_code = cli_main(
            ["operate", "--scenario", "operate-smoke", "--steps", "12", "--no-cache"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "in-place slides" in output
        assert "regret" in output

    def test_cli_operate_json(self, capsys):
        exit_code = cli_main(
            ["operate", "--scenario", "operate-smoke", "--steps", "8", "--no-cache", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 2
        record = payload["points"][0]["record"]
        assert record["steps"] == 8
        assert record["cold_loads"] == 1

    def test_cli_rejects_non_operate_scenario(self, capsys):
        exit_code = cli_main(["operate", "--scenario", "fig06", "--no-cache"])
        assert exit_code == 2
        assert "not an operate-workflow" in capsys.readouterr().out

    def test_cli_rejects_workflow_override(self, capsys):
        exit_code = cli_main(
            ["operate", "--scenario", "operate-smoke", "--set", "workflow=plan", "--no-cache"]
        )
        assert exit_code == 2
        assert "not an operate-workflow" in capsys.readouterr().out

    def test_cli_unknown_scenario(self, capsys):
        exit_code = cli_main(["operate", "--scenario", "operate-fig99", "--no-cache"])
        assert exit_code == 1
