"""Physical dispatch invariants must hold under every fault type.

Property-style checks: whatever the fault program — outages, WAN cuts,
forecast blackouts, surges, solver faults, full solver outages — every
committed decision (LP or greedy fallback) must respect capacity, conserve
demand, keep the battery inside its envelope, and stay under the WAN budget.
"""

import numpy as np
import pytest

from repro.lpsolver import highs_backend
from repro.operator import (
    DemandSurge,
    FaultSpec,
    ForecastBlackout,
    OperateConfig,
    ReplayHarness,
    SiteAsset,
    SiteOutage,
    SolverOutage,
    TrafficModel,
    WanDegradation,
)

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)

SITE_NAMES = ("alpha", "beta", "gamma")
SITE_CAP_KW = 600.0
TOTAL_CAP_KW = 1000.0

FAULT_PROGRAMS = {
    "none": FaultSpec(),
    "site-outage": FaultSpec(
        site_outages=(SiteOutage(site="beta", start_step=5, duration_steps=4),)
    ),
    "fleet-outage": FaultSpec(
        site_outages=tuple(
            SiteOutage(site=index, start_step=8, duration_steps=2)
            for index in range(len(SITE_NAMES))
        )
    ),
    "wan-degradation": FaultSpec(
        wan_degradations=(WanDegradation(start_step=4, duration_steps=6, factor=0.25),)
    ),
    "wan-cut": FaultSpec(
        wan_degradations=(WanDegradation(start_step=4, duration_steps=6, factor=0.0),)
    ),
    "forecast-blackout": FaultSpec(
        forecast_blackouts=(ForecastBlackout(start_step=6, duration_steps=5),)
    ),
    "demand-surge": FaultSpec(
        demand_surges=(DemandSurge(start_step=3, duration_steps=8, multiplier=1.8),)
    ),
    "solver-fault": FaultSpec(solver_faults=(7, 13)),
    "solver-outage": FaultSpec(
        solver_outages=(SolverOutage(start_step=9, duration_steps=3),)
    ),
    "everything-at-once": FaultSpec(
        site_outages=(SiteOutage(site="alpha", start_step=5, duration_steps=3),),
        wan_degradations=(WanDegradation(start_step=4, duration_steps=6, factor=0.5),),
        forecast_blackouts=(ForecastBlackout(start_step=10, duration_steps=3),),
        demand_surges=(DemandSurge(start_step=2, duration_steps=10, multiplier=1.5),),
        solver_faults=(6,),
        solver_outages=(SolverOutage(start_step=15, duration_steps=2),),
    ),
}


def _harness(faults, steps=20, horizon=8, **config_kwargs):
    config = OperateConfig(
        steps=steps,
        horizon_hours=horizon,
        forecast_error=0.2,
        energy_forecast="noisy-oracle",
        load_forecast="noisy-oracle",
        **config_kwargs,
    )
    needed = steps + config.horizon_steps + config.reforecast_every
    hours = np.arange(needed, dtype=float)

    def site(name, phase):
        production = np.clip(np.sin(2 * np.pi * (hours + phase) / 24.0), 0, None)
        return SiteAsset(
            name=name,
            capacity_kw=SITE_CAP_KW,
            battery_kwh=0.3 * SITE_CAP_KW,
            energy_price_per_kwh=0.1,
            pue=np.full(needed, 1.25),
            production_kw=production * SITE_CAP_KW * 1.8,
        )

    sites = [site(name, phase) for name, phase in zip(SITE_NAMES, (0.0, 10.0, 18.0))]
    trace = TrafficModel(seed=3).synthesize(needed, total_capacity_kw=TOTAL_CAP_KW)
    return (
        ReplayHarness(sites, trace, config, total_capacity_kw=TOTAL_CAP_KW, faults=faults),
        trace,
        config,
    )


@pytest.mark.parametrize("name", sorted(FAULT_PROGRAMS))
def test_invariants_hold_under_fault_program(name):
    faults = FAULT_PROGRAMS[name]
    shed_tiers = [[0.6, 20.0], [0.4, 5.0]] if name == "everything-at-once" else None
    harness, trace, config = _harness(faults, shed_tiers=shed_tiers)
    outcome = harness.run("forecast")
    assert len(outcome.decisions) == config.steps

    battery_kwh = np.full(len(SITE_NAMES), 0.3 * SITE_CAP_KW)
    wan_move_kw = config.wan_move_fraction_per_hour * TOTAL_CAP_KW * config.step_hours
    for step, decision in enumerate(outcome.decisions):
        capacity_now = SITE_CAP_KW * faults.capacity_factors(step, SITE_NAMES)
        demand = float(trace.demand_kw[step]) * faults.demand_multiplier(step)
        atol = 1e-4 * max(demand, 1.0)

        # Capacity: nothing computes on a dead site or above its rating.
        assert np.all(decision.compute_kw >= -atol)
        assert np.all(decision.compute_kw <= capacity_now + atol)

        # Coverage: served plus shed is never short of realized demand
        # (anchored load may overshoot when demand drops faster than the WAN
        # lets it drain, but it can never silently under-serve).
        assert float(decision.compute_kw.sum()) + decision.unserved_kw >= demand - atol
        assert decision.unserved_kw >= -atol

        # WAN: migrations respect the (possibly degraded) budget.
        assert decision.moved_kw <= wan_move_kw * faults.wan_factor(step) + atol

        # Battery envelope: levels stay in [0, B], discharge is backed by
        # stored energy, charge never overfills.
        assert np.all(decision.level_kwh >= -atol)
        assert np.all(decision.level_kwh <= battery_kwh + atol)
        assert np.all(decision.discharge_kw >= -atol)
        assert np.all(decision.charge_kw >= -atol)

        # Energy: green + battery + brown covers the facility draw.
        facility = 1.25 * (
            decision.compute_kw + config.migration_factor * decision.migrate_kw
        )
        supplied = decision.green_direct_kw + decision.discharge_kw + decision.brown_kw
        assert np.all(supplied >= facility - atol)

        # Tier split, when present, reconciles with the total.
        if decision.unserved_by_tier is not None:
            assert float(decision.unserved_by_tier.sum()) == pytest.approx(
                decision.unserved_kw, abs=atol
            )
            assert np.all(decision.unserved_by_tier >= -atol)


def test_no_faults_means_no_unserved_demand():
    harness, _, _ = _harness(FaultSpec())
    outcome = harness.run("forecast")
    assert outcome.unserved_kwh == pytest.approx(0.0, abs=1e-6)
    assert not outcome.degraded


def test_battery_levels_chain_across_steps():
    """Each step's closing level is the next step's opening level."""
    faults = FAULT_PROGRAMS["everything-at-once"]
    harness, _, config = _harness(faults)
    outcome = harness.run("forecast")
    eff = config.battery_efficiency
    delta = config.step_hours
    previous = np.zeros(len(SITE_NAMES))
    for decision in outcome.decisions:
        expected = previous + delta * (eff * decision.charge_kw - decision.discharge_kw)
        assert decision.level_kwh == pytest.approx(expected, abs=1e-4)
        previous = decision.level_kwh
