"""Self-tests for the reprolint contract linter.

Every rule is exercised against a true-positive fixture (each planted
violation must be reported) and a false-positive fixture (the legitimate
idiom must stay clean); pragma suppression, configuration handling and the
CLI exit codes are covered on top.  The fixtures live in
``tests/tools/fixtures/`` and are excluded from repo-wide lint runs by the
``[tool.reprolint]`` block in ``pyproject.toml``.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import pytest

from tools.reprolint import Config, RULES, lint_file, lint_paths, load_config, main
from tools.reprolint.config import config_from_table

FIXTURES = Path(__file__).parent / "fixtures"

#: Config for fixture linting: no excludes (the repo config excludes the
#: fixture directory on purpose) and FLT001 active on the fixture path.
FIXTURE_CONFIG = Config(exclude=(), float_paths=("tests/tools/fixtures",))


def findings_for(name: str, config: Config = FIXTURE_CONFIG):
    return lint_file(str(FIXTURES / name), config)


def codes_and_lines(findings):
    return {(finding.code, finding.line) for finding in findings if not finding.suppressed}


class TestRuleTruePositives:
    def test_det001_catches_every_global_rng_flavour(self):
        found = codes_and_lines(findings_for("det001_true_positive.py"))
        assert found == {
            ("DET001", 8),   # random.random()
            ("DET001", 9),   # from-imported randint()
            ("DET001", 10),  # np.random.rand()
            ("DET001", 11),  # unseeded default_rng()
            ("DET001", 12),  # unseeded random.Random()
        }

    def test_det002_catches_hash_outside_dunder(self):
        found = codes_and_lines(findings_for("det002_true_positive.py"))
        assert found == {("DET002", 5)}

    def test_det003_catches_wall_clock_reads(self):
        found = codes_and_lines(findings_for("det003_true_positive.py"))
        assert found == {("DET003", 6), ("DET003", 7), ("DET003", 8)}

    def test_det004_catches_module_state_seeds(self):
        found = codes_and_lines(findings_for("det004_true_positive.py"))
        assert found == {
            ("DET004", 11),  # module-level seed from a module global
            ("DET004", 15),  # function seed reads module state
            ("DET004", 19),  # module state mixed into a derived seed
            ("DET004", 23),  # keyword seed= argument
        }

    def test_pkl001_catches_lambdas_and_local_defs(self):
        found = codes_and_lines(findings_for("pkl001_true_positive.py"))
        assert found == {("PKL001", 5), ("PKL001", 10), ("PKL001", 11)}

    def test_flt001_catches_exact_float_equality(self):
        found = codes_and_lines(findings_for("flt001_true_positive.py"))
        assert found == {("FLT001", 5), ("FLT001", 7)}

    def test_set001_catches_order_leaks(self):
        found = codes_and_lines(findings_for("set001_true_positive.py"))
        assert found == {
            ("SET001", 5),  # list(set(...))
            ("SET001", 6),  # for over a set literal
            ("SET001", 8),  # join over a set difference
            ("SET001", 9),  # dict comprehension over a set
        }


class TestRuleFalsePositives:
    @pytest.mark.parametrize(
        "fixture",
        [
            "det001_false_positive.py",
            "det002_false_positive.py",
            "det003_false_positive.py",
            "det004_false_positive.py",
            "pkl001_false_positive.py",
            "flt001_false_positive.py",
            "set001_false_positive.py",
            "clean_module.py",
        ],
    )
    def test_legitimate_idioms_stay_clean(self, fixture):
        assert codes_and_lines(findings_for(fixture)) == set()


class TestPragmas:
    def test_matching_pragma_suppresses_and_others_survive(self):
        findings = findings_for("pragma_suppressed.py")
        suppressed = [f for f in findings if f.suppressed]
        live = [f for f in findings if not f.suppressed]
        assert [(f.code, f.line) for f in suppressed] == [("DET001", 5)]
        # Line 6 has no pragma; line 7's pragma names the wrong rule.
        assert {(f.code, f.line) for f in live} == {("DET001", 6), ("DET001", 7)}

    def test_unknown_pragma_code_is_itself_reported(self, tmp_path):
        source = tmp_path / "module.py"
        # Assembled at runtime so this test file itself stays pragma-clean.
        source.write_text("x = 1  # reprolint: " + "ok(NOPE999)\n")
        findings = lint_file(str(source), FIXTURE_CONFIG)
        assert any(f.code == "RLERR" and "NOPE999" in f.message for f in findings)

    def test_skip_file_pragma_skips_the_module(self, tmp_path):
        source = tmp_path / "module.py"
        source.write_text("# reprolint: skip-file\nimport random\nx = random.random()\n")
        assert lint_file(str(source), FIXTURE_CONFIG) == []


class TestConfig:
    def test_defaults_exclude_the_fixture_directory(self):
        config = Config()
        assert config.is_excluded("tests/tools/fixtures/det001_true_positive.py")
        assert not config.is_excluded("tests/tools/test_reprolint.py")

    def test_float_rule_scoping(self):
        config = Config()
        assert config.float_rule_applies("src/repro/lpsolver/model.py")
        assert config.float_rule_applies("src/repro/operator/dispatch.py")
        assert not config.float_rule_applies("src/repro/geo/grid.py")

    def test_select_restricts_rules(self):
        config = Config(
            select=("DET002",), exclude=(), float_paths=("tests/tools/fixtures",)
        )
        findings = findings_for("det001_true_positive.py", config)
        assert codes_and_lines(findings) == set()

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            config_from_table({"surprise": ["x"]})

    def test_pyproject_roundtrip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.reprolint]\nselect = ["SET001"]\nexclude = ["build"]\n'
        )
        config = load_config(str(pyproject))
        assert config.select == ("SET001",)
        assert config.exclude == ("build",)
        # Unconfigured keys keep their defaults.
        assert "PricingChunkTask" in config.descriptor_classes

    def test_repo_pyproject_excludes_fixtures(self):
        config = load_config(os.path.join(os.path.dirname(__file__), "..", "..", "pyproject.toml"))
        assert config.is_excluded("tests/tools/fixtures/whatever.py")


class TestDirectoryLinting:
    def test_lint_paths_walks_and_respects_excludes(self):
        config = Config(exclude=(), float_paths=("tests/tools/fixtures",))
        findings = lint_paths([str(FIXTURES)], config)
        assert {f.code for f in findings if not f.suppressed} >= {
            "DET001", "DET002", "DET003", "DET004", "PKL001", "FLT001", "SET001",
        }
        excluded = Config(
            exclude=(os.path.relpath(FIXTURES).replace(os.sep, "/"),)
        )
        assert lint_paths([str(FIXTURES)], excluded) == []


class TestCLI:
    def _run(self, argv):
        stream = io.StringIO()
        code = main(argv, stream=stream)
        return code, stream.getvalue()

    def _fixture_pyproject(self, tmp_path) -> str:
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.reprolint]\nexclude = []\nfloat-paths = ["tests/tools/fixtures"]\n'
        )
        return str(pyproject)

    def test_exit_zero_on_clean_file(self, tmp_path):
        code, output = self._run(
            ["--config", self._fixture_pyproject(tmp_path), str(FIXTURES / "clean_module.py")]
        )
        assert code == 0
        assert "0 findings" in output

    def test_exit_one_on_findings(self, tmp_path):
        code, output = self._run(
            ["--config", self._fixture_pyproject(tmp_path), str(FIXTURES / "det001_true_positive.py")]
        )
        assert code == 1
        assert "DET001" in output

    def test_exit_two_on_missing_path(self, tmp_path):
        code, _ = self._run(
            ["--config", self._fixture_pyproject(tmp_path), str(tmp_path / "nope.py")]
        )
        assert code == 2

    def test_exit_two_on_unknown_select(self):
        code, _ = self._run(["--select", "NOPE001", "src"])
        assert code == 2

    def test_exit_two_on_syntax_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code, _ = self._run(["--config", self._fixture_pyproject(tmp_path), str(bad)])
        assert code == 2

    def test_list_rules(self):
        code, output = self._run(["--list-rules"])
        assert code == 0
        for rule in RULES:
            assert rule.code in output

    def test_show_suppressed(self, tmp_path):
        code, output = self._run(
            [
                "--config", self._fixture_pyproject(tmp_path),
                "--show-suppressed",
                str(FIXTURES / "pragma_suppressed.py"),
            ]
        )
        assert code == 1
        assert "(suppressed)" in output

    def test_repo_tree_is_clean(self):
        # The acceptance gate: the shipped configuration over the shipped
        # tree must be violation-free.
        code, output = self._run(["src", "tests", "tools"])
        assert code == 0, output
