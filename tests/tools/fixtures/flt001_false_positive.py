"""FLT001 false positives: tolerance comparisons and integer equality."""

import math


def converged(objective: float, previous: float, count: int) -> bool:
    if abs(objective - previous) <= 1e-9:
        return True
    if math.isclose(objective, previous, rel_tol=1e-9):
        return True
    return count == 0
