"""DET003 true positives: wall-clock reads in library code."""

import time
from datetime import date, datetime

STAMP = time.time()  # line 6: wall clock
NOW = datetime.now()  # line 7: wall clock
TODAY = date.today()  # line 8: wall clock
