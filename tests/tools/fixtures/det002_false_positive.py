"""DET002 false positives: __hash__ implementations and crc32 hashing."""

import zlib


class Key:
    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index

    def __hash__(self) -> int:
        return hash((self.name, self.index))  # builtin hash is fine here


def stable_key(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8"))
