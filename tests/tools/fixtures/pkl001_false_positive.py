"""PKL001 false positives: module-level functions pickle fine."""


def worker(item):
    return item * 2


def dispatch(pool, items):
    futures = [pool.submit(worker, item) for item in items]
    mapped = list(pool.map(worker, items))
    return futures, mapped
