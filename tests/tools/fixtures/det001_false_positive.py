"""DET001 false positives: explicitly seeded randomness is the idiom."""

import random
import zlib

import numpy as np

rng = np.random.default_rng(1234)
derived = np.random.default_rng(zlib.crc32(b"seed:site"))
chain_rng = random.Random(7919)
seq = np.random.SeedSequence(42)
sample = rng.random(8)
