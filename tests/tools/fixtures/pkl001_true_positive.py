"""PKL001 true positives: unpicklable callables at the executor boundary."""


def dispatch(pool, items):
    futures = [pool.submit(lambda item: item * 2, item) for item in items]  # line 5

    def local_worker(item):
        return item + 1

    mapped = list(pool.map(local_worker, items))  # line 10
    task = PricingChunkTask(problem=lambda: None, sitings=(), options=None)  # line 11
    return futures, mapped, task


class PricingChunkTask:  # minimal stand-in so the fixture parses standalone
    def __init__(self, problem, sitings, options):
        self.problem = problem
