"""SET001 true positives: set order escaping into ordered outputs."""


def leak_order(names, extra):
    ordered = list(set(names))  # line 5: list freezes arbitrary set order
    for name in {"b", "a", "c"}:  # line 6: loop body sees set order
        ordered.append(name)
    message = ", ".join(set(names) - set(extra))  # line 8: join over set difference
    table = {name: 0 for name in set(names)}  # line 9: dict comp from a set
    return ordered, message, table
