"""Pragma fixture: one suppressed finding, one live finding of another rule."""

import random

OK = random.random()  # reprolint: ok(DET001) fixture proves suppression works
LIVE = random.random()  # line 5: unsuppressed
WRONG_CODE = random.random()  # reprolint: ok(DET002) wrong rule; DET001 still fires
