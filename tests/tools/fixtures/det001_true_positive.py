"""DET001 true positives: every flavour of global-state RNG access."""

import random

import numpy as np
from random import randint

VALUE = random.random()  # line 8: module-function on the hidden global RNG
PICK = randint(0, 10)  # line 9: from-imported global-state function
ARR = np.random.rand(4)  # line 10: numpy hidden-global RandomState
UNSEEDED = np.random.default_rng()  # line 11: generator without a seed
LEGACY = random.Random()  # line 12: Random() without a seed
