"""DET003 false positives: monotonic duration measurement is allowed."""

import time
from datetime import datetime

started = time.perf_counter()
elapsed = time.perf_counter() - started
tick = time.monotonic()
parsed = datetime.fromisoformat("2014-01-01T00:00:00")
formatted = time.strftime("%Y", time.gmtime(0))
