"""DET004 true positives: seeds that silently read module state."""

import random

import numpy as np
from numpy.random import default_rng

_GLOBAL_SEED = 1234
_OFFSET = 7

MODULE_RNG = default_rng(_GLOBAL_SEED)  # line 11: module-level module-state seed


def make_rng():
    return default_rng(_GLOBAL_SEED + 1)  # line 15: function reads module state


def chain(index):
    return random.Random(_OFFSET * index)  # line 19: mixes module state in


def keyword_seed():
    return np.random.RandomState(seed=_GLOBAL_SEED)  # line 23: keyword seed
