"""A module that violates nothing (exit-code fixture)."""

import zlib

import numpy as np


def stable_rng(seed: int, name: str) -> np.random.Generator:
    return np.random.default_rng(zlib.crc32(f"{seed}:{name}".encode("utf-8")))
