"""DET002 true positive: builtin hash() feeding a cache key."""


def cache_key(spec: dict) -> int:
    return hash(tuple(sorted(spec.items())))  # line 5: randomised per process
