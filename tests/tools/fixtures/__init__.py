"""Deliberate-violation fixtures for the reprolint self-tests.

Every file here exists to trip (or prove innocent against) exactly one lint
rule; the directory is excluded from repo-wide runs via the
``[tool.reprolint]`` block in ``pyproject.toml``.  Nothing imports these
modules — several would not even be importable (they reference undefined
names on purpose, to stay minimal).
"""
