"""FLT001 true positives: exact float equality on solver-scale values."""


def converged(objective: float, previous: float) -> bool:
    if objective == 0.0:  # line 5: exact float equality
        return True
    return previous != 1e-9  # line 7: != against a float literal
