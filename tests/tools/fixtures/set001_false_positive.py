"""SET001 false positives: sorted or order-insensitive set consumption."""


def safe_order(names, extra):
    ordered = sorted(set(names))
    unknown = set(names) - set(extra)
    if unknown:
        message = ", ".join(sorted(unknown))
    else:
        message = ""
    count = len(set(names))
    smallest = min(set(names), default=None)
    return ordered, message, count, smallest
