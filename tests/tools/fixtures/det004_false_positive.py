"""DET004 false positives: seeds derived from explicit arguments."""

import zlib

import numpy as np
from numpy.random import SeedSequence, default_rng

BASE_SEED = 2014


def from_param(seed):
    return default_rng(seed)


def derived(name, seed):
    return default_rng(zlib.crc32(f"{name}:{seed}".encode()))


def with_default(seed=BASE_SEED):
    # The *default expression* names module state, but the call site only
    # sees the bound parameter — callers can always pass their own seed.
    return default_rng(int(seed))


class Chain:
    def __init__(self, seed):
        self.seed = seed

    def rng(self):
        return default_rng([int(self.seed), 0xE7E27])


def fanout(seeds):
    return [default_rng(s) for s in seeds]


def spawn(seed):
    seq = SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(3)]


MODULE_FANOUT = [default_rng(s) for s in (1, 2, 3)]

make = lambda seed: default_rng(seed)
