"""Ensemble determinism, the stochastic LP's differential oracles, CVaR."""

import numpy as np
import pytest

from repro.core.provisioning import ProvisioningCompiler, solve_provisioning
from repro.robust import (
    EnsembleConfig,
    cvar,
    demand_factor,
    ensemble_report,
    perturbed_problem,
    solve_ensemble_lp,
    weather_factors,
)
from repro.robust.stochastic import plan_siting_and_sizing
from repro.scenarios import ExperimentRunner, ScenarioSpec


@pytest.fixture(scope="module")
def siting(two_site_problem):
    return {profile.name: "large" for profile in two_site_problem.profiles}


class TestEnsembleConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleConfig(draws=0)
        with pytest.raises(ValueError):
            EnsembleConfig(weather_noise=-0.1)
        with pytest.raises(ValueError):
            EnsembleConfig(alpha=1.0)
        with pytest.raises(ValueError):
            EnsembleConfig(mode="pessimistic")
        with pytest.raises(ValueError):
            EnsembleConfig(unserved_penalty_x=0.0)


class TestDraws:
    def test_draws_are_bit_identical_across_calls(self):
        config = EnsembleConfig(draws=4, seed=11)
        first = weather_factors(config, 2, "solar:x", 32)
        second = weather_factors(config, 2, "solar:x", 32)
        assert np.array_equal(first, second)
        assert demand_factor(config, 3) == demand_factor(config, 3)

    def test_draws_and_series_are_distinct(self):
        config = EnsembleConfig(draws=4, seed=11)
        assert not np.array_equal(
            weather_factors(config, 0, "solar:x", 32),
            weather_factors(config, 1, "solar:x", 32),
        )
        assert not np.array_equal(
            weather_factors(config, 0, "solar:x", 32),
            weather_factors(config, 0, "wind:x", 32),
        )

    def test_perturbation_leaves_the_base_problem_untouched(self, two_site_problem):
        config = EnsembleConfig(draws=2, seed=5)
        before = [profile.solar_alpha.copy() for profile in two_site_problem.profiles]
        perturbed = perturbed_problem(two_site_problem, config, 0)
        for profile, original in zip(two_site_problem.profiles, before):
            assert np.array_equal(profile.solar_alpha, original)
        assert perturbed.params.total_capacity_kw != pytest.approx(
            two_site_problem.params.total_capacity_kw
        ) or config.demand_noise == 0

    def test_zero_noise_draw_is_the_base_problem(self, two_site_problem):
        config = EnsembleConfig(draws=1, weather_noise=0.0, demand_noise=0.0)
        perturbed = perturbed_problem(two_site_problem, config, 0)
        for original, copy in zip(two_site_problem.profiles, perturbed.profiles):
            assert np.array_equal(original.solar_alpha, copy.solar_alpha)
            assert np.array_equal(original.wind_beta, copy.wind_beta)
        assert perturbed.params.total_capacity_kw == pytest.approx(
            two_site_problem.params.total_capacity_kw
        )


class TestCvar:
    def test_tail_mean(self):
        costs = list(range(1, 11))
        assert cvar(costs, 0.9) == 10.0       # worst single draw
        assert cvar(costs, 0.5) == np.mean([6, 7, 8, 9, 10])

    def test_small_samples_use_at_least_one_draw(self):
        assert cvar([3.0, 7.0], 0.99) == 7.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            cvar([], 0.9)


class TestStochasticLP:
    def test_zero_noise_single_draw_matches_deterministic_solver(
        self, two_site_problem, siting, solver_options
    ):
        config = EnsembleConfig(draws=1, weather_noise=0.0, demand_noise=0.0)
        compiler = ProvisioningCompiler(perturbed_problem(two_site_problem, config, 0))
        joint = solve_ensemble_lp([compiler], siting, options=solver_options)
        deterministic = solve_provisioning(
            two_site_problem, siting, options=solver_options, enforce_spread=False
        )
        assert joint.objective == pytest.approx(deterministic.monthly_cost, rel=1e-9)

    def test_joint_objective_decomposes_over_fixed_sizing_draws(
        self, two_site_problem, siting, solver_options
    ):
        """Differential oracle: with sizing fixed, draws decouple exactly."""
        config = EnsembleConfig(draws=3, seed=7)
        compilers = [
            ProvisioningCompiler(perturbed_problem(two_site_problem, config, draw))
            for draw in range(config.draws)
        ]
        joint = solve_ensemble_lp(compilers, siting, options=solver_options)
        bounds = {
            name: tuple(
                joint.sizing[name][key]
                for key in ("capacity_kw", "solar_kw", "wind_kw", "battery_kwh")
            )
            for name in siting
        }
        per_draw = [
            solve_ensemble_lp(
                [compiler], siting, options=solver_options, sizing_bounds=bounds
            ).per_draw_costs[0]
            for compiler in compilers
        ]
        assert joint.objective == pytest.approx(float(np.mean(per_draw)), rel=1e-7)
        assert np.allclose(joint.per_draw_costs, per_draw, rtol=1e-6)

    def test_stochastic_objective_is_deterministic_across_solves(
        self, two_site_problem, siting, solver_options
    ):
        config = EnsembleConfig(draws=2, seed=3)
        def solve():
            compilers = [
                ProvisioningCompiler(perturbed_problem(two_site_problem, config, draw))
                for draw in range(config.draws)
            ]
            return solve_ensemble_lp(compilers, siting, options=solver_options)
        assert solve().objective == solve().objective

    def test_input_validation(self, two_site_problem, siting, solver_options):
        with pytest.raises(ValueError):
            solve_ensemble_lp([], siting, options=solver_options)
        compiler = ProvisioningCompiler(two_site_problem)
        with pytest.raises(ValueError):
            solve_ensemble_lp([compiler], {}, options=solver_options)
        with pytest.raises(ValueError):
            solve_ensemble_lp([compiler], siting, weights=[0.5, 0.5], options=solver_options)


class TestEnsembleReport:
    def test_regret_is_nonnegative_and_report_is_json_ready(
        self, two_site_problem, siting, solver_options
    ):
        import json

        plan = solve_provisioning(
            two_site_problem, siting, options=solver_options, enforce_spread=False
        ).plan
        plan_siting, sizing = plan_siting_and_sizing(plan)
        config = EnsembleConfig(draws=3, mode="stochastic", seed=2)
        report = ensemble_report(
            two_site_problem, plan_siting, sizing, config, options=solver_options
        )
        assert report["draws"] == 3
        assert min(report["per_draw_regret"]) >= -1e-6
        assert report["cvar_cost"] >= report["expected_cost"] - 1e-9
        # The joint stochastic sizing can only improve on the fixed plan.
        assert report["stochastic_expected_cost"] <= report["expected_cost"] + 1e-6
        json.dumps(report)


class TestExecutorDeterminism:
    @pytest.fixture(scope="class")
    def robust_spec(self):
        return ScenarioSpec(
            name="robust-determinism",
            num_locations=12,
            catalog_seed=3,
            days_per_season=1,
            hours_per_epoch=6,
            total_capacity_kw=20_000.0,
            min_green_fraction=0.5,
            search={
                "keep_locations": 4,
                "max_iterations": 3,
                "patience": 3,
                "num_chains": 1,
                "seed": 3,
                "max_datacenters": 3,
            },
            ensemble={"draws": 2, "mode": "stochastic", "seed": 9},
        )

    def test_serial_and_thread_records_are_bit_identical(self, robust_spec):
        serial = ExperimentRunner(workers=1, executor="serial").run_point(robust_spec)
        threaded = ExperimentRunner(workers=2, executor="thread").run_point(robust_spec)
        assert serial.record == threaded.record
        assert serial.record["robustness"]["per_draw_cost"] == (
            threaded.record["robustness"]["per_draw_cost"]
        )

    @pytest.mark.multicore
    def test_process_records_are_bit_identical(self, robust_spec):
        serial = ExperimentRunner(workers=1, executor="serial").run_point(robust_spec)
        process = ExperimentRunner(workers=2, executor="process").run_point(robust_spec)
        assert serial.record == process.record
