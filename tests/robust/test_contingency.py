"""N-1 contingency LP: budgets, differential oracles, the report shape."""

import json

import numpy as np
import pytest

from repro.core.provisioning import ProvisioningCompiler, solve_provisioning
from repro.lpsolver import SolverStatusError
from repro.robust import (
    ContingencyConfig,
    contingency_report,
    evaluate_contingencies,
    plan_with_sizing,
    solve_contingency_lp,
)
from repro.robust.contingency import _annual_budget_kwh
from repro.robust.stochastic import plan_siting_and_sizing


@pytest.fixture(scope="module")
def siting(two_site_problem):
    return {profile.name: "large" for profile in two_site_problem.profiles}


@pytest.fixture(scope="module")
def compiler(two_site_problem):
    return ProvisioningCompiler(two_site_problem)


@pytest.fixture(scope="module")
def det_sizing(two_site_problem, siting, solver_options):
    plan = solve_provisioning(
        two_site_problem, siting, options=solver_options, enforce_spread=False
    ).plan
    _, sizing = plan_siting_and_sizing(plan)
    return sizing


class TestContingencyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContingencyConfig(survivability_epsilon=0.0)
        with pytest.raises(ValueError):
            ContingencyConfig(survivability_epsilon=1.5)
        with pytest.raises(ValueError):
            ContingencyConfig(contingency_weight=0.0)
        with pytest.raises(ValueError):
            ContingencyConfig(unserved_penalty_x=-1.0)
        with pytest.raises(ValueError):
            ContingencyConfig(outage_start_step=-1)
        with pytest.raises(ValueError):
            ContingencyConfig(outage_duration_steps=0)


class TestJointSolve:
    def test_every_contingency_stays_within_the_budget(
        self, compiler, siting, solver_options
    ):
        config = ContingencyConfig(survivability_epsilon=0.05)
        solution = solve_contingency_lp(
            compiler, siting, config=config, options=solver_options
        )
        budget = solution.budget_unserved_kwh
        assert budget == pytest.approx(
            _annual_budget_kwh(compiler, config.survivability_epsilon)
        )
        tolerance = 1e-6 * budget + 1e-3
        assert solution.per_contingency_unserved_kwh.shape == (len(siting),)
        assert np.all(solution.per_contingency_unserved_kwh <= budget + tolerance)
        assert solution.worst_unserved_kwh <= budget + tolerance
        for name in siting:
            assert solution.sizing[name]["capacity_kw"] > 0.0

    def test_solve_is_deterministic(self, compiler, siting, solver_options):
        def solve():
            return solve_contingency_lp(compiler, siting, options=solver_options)

        assert solve().objective == solve().objective

    def test_tighter_epsilon_cannot_be_cheaper(self, compiler, siting, solver_options):
        loose = solve_contingency_lp(
            compiler,
            siting,
            config=ContingencyConfig(survivability_epsilon=0.20),
            options=solver_options,
        )
        tight = solve_contingency_lp(
            compiler,
            siting,
            config=ContingencyConfig(survivability_epsilon=0.02),
            options=solver_options,
        )
        assert tight.objective >= loose.objective - 1e-6 * abs(loose.objective)

    def test_single_site_siting_is_infeasible(self, compiler, siting, solver_options):
        lone = {next(iter(siting)): "large"}
        with pytest.raises(SolverStatusError):
            solve_contingency_lp(
                compiler,
                lone,
                config=ContingencyConfig(survivability_epsilon=0.05),
                options=solver_options,
            )


class TestEvaluationDifferential:
    def test_batched_evaluation_matches_brute_force(
        self, compiler, siting, det_sizing, solver_options
    ):
        batched = evaluate_contingencies(
            compiler, siting, det_sizing, options=solver_options, batched=True
        )
        brute = evaluate_contingencies(
            compiler, siting, det_sizing, options=solver_options, batched=False
        )
        assert np.allclose(batched["costs"], brute["costs"], rtol=1e-7)
        assert np.allclose(
            batched["unserved_kwh"], brute["unserved_kwh"], rtol=1e-6, atol=1e-3
        )

    def test_joint_unserved_matches_fixed_sizing_repricing(
        self, compiler, siting, solver_options
    ):
        """Differential oracle: re-pricing the N-1 sizing per contingency
        reproduces the joint LP's per-contingency unserved energy."""
        config = ContingencyConfig(survivability_epsilon=0.05)
        joint = solve_contingency_lp(
            compiler, siting, config=config, options=solver_options
        )
        from repro.robust.stochastic import _sizing_tuples

        repriced = evaluate_contingencies(
            compiler,
            siting,
            _sizing_tuples(joint.sizing),
            options=solver_options,
            unserved_penalty_x=config.unserved_penalty_x,
        )
        # Index 0 is the nominal (no-outage) case; contingencies follow.  The
        # unconstrained repricing reaches the physical unserved minimum; the
        # joint LP's budget rows clip it at epsilon, so the two agree up to
        # that clip.
        scale = max(joint.budget_unserved_kwh, 1.0)
        assert np.allclose(
            np.minimum(repriced["unserved_kwh"][1:], joint.budget_unserved_kwh),
            joint.per_contingency_unserved_kwh,
            atol=1e-5 * scale,
        )

    def test_deterministic_sizing_exceeds_a_tight_budget(
        self, compiler, siting, det_sizing, solver_options
    ):
        """The cost-optimal sizing concentrates capacity, so losing its main
        site must blow through a tight epsilon budget somewhere."""
        evaluation = evaluate_contingencies(
            compiler, siting, det_sizing, options=solver_options
        )
        budget = _annual_budget_kwh(compiler, 0.05)
        assert float(np.max(evaluation["unserved_kwh"][1:])) > budget


class TestContingencyReport:
    def test_report_shape_and_acceptance(
        self, compiler, siting, det_sizing, solver_options
    ):
        config = ContingencyConfig(survivability_epsilon=0.05)
        report = contingency_report(
            compiler, siting, det_sizing, config=config, options=solver_options
        )
        json.dumps(report)
        assert report["num_sites"] == len(siting)
        # The N-1 sizing survives every single-site outage; the deterministic
        # plan fails at least its worst one.
        assert report["n1_violations"] == 0
        assert report["det_violations"] >= 1
        assert (
            report["worst_case"]["det"]["unserved_kwh"]
            > report["worst_case"]["n1"]["unserved_kwh"]
        )
        # Survivability costs something, and the premium is reported.
        assert report["n1_nominal_cost"] >= report["det_nominal_cost"] - 1e-6
        assert report["cost_premium_pct"] >= -1e-9
        # Criticality is ranked by deterministic damage, worst first.
        damages = [entry["det_unserved_kwh"] for entry in report["criticality"]]
        assert damages == sorted(damages, reverse=True)
        assert set(report["n1_sizing"]) == set(siting)


class TestPlanWithSizing:
    def test_sizing_fields_are_replaced(
        self, two_site_problem, siting, solver_options
    ):
        plan = solve_provisioning(
            two_site_problem, siting, options=solver_options, enforce_spread=False
        ).plan
        sizing = {
            dc.name: {
                "capacity_kw": dc.capacity_kw + 1000.0,
                "solar_kw": dc.solar_kw + 10.0,
                "wind_kw": dc.wind_kw,
                "battery_kwh": dc.battery_kwh,
            }
            for dc in plan.datacenters
        }
        swapped = plan_with_sizing(plan, sizing)
        assert swapped is not plan
        for dc in swapped.datacenters:
            assert dc.capacity_kw == pytest.approx(sizing[dc.name]["capacity_kw"])
            assert dc.solar_kw == pytest.approx(sizing[dc.name]["solar_kw"])
        # The original plan is untouched.
        assert plan.total_capacity_kw == pytest.approx(
            sum(s["capacity_kw"] for s in sizing.values()) - 2000.0
        )
