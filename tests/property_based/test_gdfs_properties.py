"""Property-based tests for GDFS and the migration planner."""

from hypothesis import given, settings, strategies as st

from repro.greennebula import GDFS, GreenDatacenter, MigrationPlanner, VirtualMachine
from repro.simulation import VMSpec


DCS = ["dc-a", "dc-b", "dc-c"]

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "replicate", "migrate"]),
        st.integers(min_value=0, max_value=3),  # block index
        st.sampled_from(DCS),
        st.sampled_from(DCS),
    ),
    max_size=40,
)


class TestGDFSInvariants:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_every_block_always_has_a_valid_replica(self, ops):
        """Whatever sequence of reads/writes/replications/migrations happens,
        no block ever loses its last valid replica and replica placement stays
        within the known datacenters."""
        gdfs = GDFS(DCS, replication_factor=2, block_size_mb=64.0)
        gdfs.create_file("f", 4 * 64.0, "dc-a")
        for operation, block, source, destination in ops:
            if operation == "read":
                gdfs.read("f", block, source)
            elif operation == "write":
                gdfs.write("f", block, source, partial=bool(block % 2))
            elif operation == "replicate":
                gdfs.replicate_step(max_blocks=2)
            elif operation == "migrate" and source != destination:
                gdfs.transfer_for_migration("f", source, destination)
            assert gdfs.check_invariants() == []

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_replication_is_idempotent_once_clean(self, ops):
        """After enough background replication passes there is nothing dirty left,
        and further passes move no data."""
        gdfs = GDFS(DCS, replication_factor=2, block_size_mb=64.0)
        gdfs.create_file("f", 4 * 64.0, "dc-a")
        for operation, block, source, _ in ops:
            if operation == "write":
                gdfs.write("f", block, source)
        for _ in range(10):
            gdfs.replicate_step(max_blocks=8)
        assert gdfs.dirty_blocks() == []
        assert gdfs.replicate_step(max_blocks=8) == 0.0

    @given(
        writes=st.lists(st.integers(min_value=0, max_value=7), max_size=20),
        writer=st.sampled_from(DCS),
        destination=st.sampled_from(DCS),
    )
    @settings(max_examples=40, deadline=None)
    def test_migration_traffic_equals_unreplicated_data(self, writes, writer, destination):
        if writer == destination:
            return
        gdfs = GDFS(DCS, replication_factor=2, block_size_mb=64.0)
        gdfs.create_file("f", 8 * 64.0, "dc-a")
        for block in writes:
            gdfs.write("f", block, writer)
        expected = gdfs.unreplicated_data_mb("f", writer)
        moved = gdfs.transfer_for_migration("f", writer, destination)
        assert moved == expected
        assert gdfs.unreplicated_data_mb("f", writer) == 0.0


class TestMigrationPlannerProperties:
    @given(
        vm_counts=st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        shed_fraction=st.floats(min_value=0.0, max_value=1.0),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_never_overshoots_donor_excess(
        self, anchor_profiles, vm_counts, shed_fraction, data
    ):
        """The planner moves at most (excess + one VM) of power out of any donor
        and never plans a migration whose source equals its destination."""
        names = ["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"]
        dcs = []
        for name, count in zip(names, vm_counts):
            dc = GreenDatacenter(
                name=name, profile=anchor_profiles[name], it_capacity_kw=1.0
            )
            dc.provision_hosts(4)
            for index in range(count):
                dc.manager.deploy(VirtualMachine(spec=VMSpec(name=f"{name}-{index}")))
            dcs.append(dc)
        current = {dc.name: dc.vm_power_kw for dc in dcs}
        total = sum(current.values())
        # Build an arbitrary feasible target split of the same total power.
        weights = [data.draw(st.floats(min_value=0.0, max_value=1.0)) for _ in dcs]
        weight_sum = sum(weights) or 1.0
        targets = {dc.name: total * w / weight_sum for dc, w in zip(dcs, weights)}
        migrations = MigrationPlanner().plan(dcs, targets)
        per_vm = 0.03
        moved_out = {dc.name: 0.0 for dc in dcs}
        for migration in migrations:
            assert migration.source != migration.destination
            moved_out[migration.source] += migration.power_kw
        for dc in dcs:
            excess = max(0.0, current[dc.name] - targets[dc.name])
            assert moved_out[dc.name] <= excess + per_vm + 1e-9
