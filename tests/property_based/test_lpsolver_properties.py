"""Property-based tests for the LP/MILP modelling layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lpsolver import LinearExpression, Model, SolveStatus


coefficients = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


class TestExpressionAlgebra:
    @given(a=coefficients, b=coefficients, x_value=small_floats, y_value=small_floats)
    @settings(max_examples=60, deadline=None)
    def test_linearity_of_evaluation(self, a, b, x_value, y_value):
        """Evaluating a*x + b*y equals a*value(x) + b*value(y)."""
        model = Model("prop")
        x = model.add_variable("x", lower=-1000, upper=1000)
        y = model.add_variable("y", lower=-1000, upper=1000)
        expr = a * x + b * y
        values = {x.index: x_value, y.index: y_value}
        assert expr.evaluate(values) == pytest.approx(a * x_value + b * y_value, abs=1e-9)

    @given(constants=st.lists(coefficients, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_sum_of_constants_is_their_sum(self, constants):
        expr = LinearExpression.sum(constants)
        assert expr.is_constant()
        assert expr.constant == pytest.approx(sum(constants), abs=1e-9)

    @given(a=coefficients, scale=st.floats(min_value=-10, max_value=10, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scaling_commutes_with_evaluation(self, a, scale):
        model = Model("prop")
        x = model.add_variable("x", lower=-10, upper=10)
        expr = a * x + 1.0
        scaled = expr * scale
        values = {x.index: 3.0}
        assert scaled.evaluate(values) == pytest.approx(expr.evaluate(values) * scale, abs=1e-9)


class TestSolverProperties:
    @given(
        demand=st.floats(min_value=1.0, max_value=100.0),
        cost_a=st.floats(min_value=0.1, max_value=10.0),
        cost_b=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_supplier_lp_picks_cheaper_source(self, demand, cost_a, cost_b):
        """min cost_a*a + cost_b*b subject to a + b >= demand uses the cheaper one."""
        model = Model("suppliers")
        a = model.add_variable("a")
        b = model.add_variable("b")
        model.add_constraint(a + b >= demand)
        model.set_objective(cost_a * a + cost_b * b)
        result = model.solve()
        assert result.is_optimal
        expected = min(cost_a, cost_b) * demand
        assert abs(result.objective - expected) <= 1e-6 * max(1.0, expected)
        assert model.check_solution(result.values) == []

    @given(
        bound=st.floats(min_value=0.5, max_value=20.0),
        floor=st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_feasibility_matches_bound_arithmetic(self, bound, floor):
        """x <= bound with x >= floor is feasible iff floor <= bound."""
        model = Model("bounds")
        x = model.add_variable("x", upper=bound)
        model.add_constraint(x >= floor)
        model.set_objective(x)
        result = model.solve()
        if floor <= bound + 1e-9:
            assert result.is_optimal
            assert result.value(x) >= floor - 1e-6
        else:
            assert result.status is SolveStatus.INFEASIBLE

    @given(values=st.lists(st.floats(min_value=0.1, max_value=9.0), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_optimal_solutions_are_feasible(self, values):
        """Whatever the data, an OPTIMAL result must satisfy every constraint."""
        model = Model("random-cover")
        variables = [model.add_variable(f"x{i}", upper=100.0) for i in range(len(values))]
        for i, value in enumerate(values):
            model.add_constraint(variables[i] >= value)
        model.add_constraint(LinearExpression.sum(variables) <= 1000.0)
        model.set_objective(LinearExpression.sum(variables))
        result = model.solve()
        assert result.is_optimal
        assert model.check_solution(result.values) == []
        assert result.objective <= 1000.0 + 1e-6
