"""Property-based tests for the energy models (battery, plants, calibration)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.availability import datacenters_needed, network_availability
from repro.core.costs import FinancingModel
from repro.energy import BatteryBank, SolarPanelModel, WindTurbineModel, calibrate_series


fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive = st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestBatteryInvariants:
    @given(
        capacity=st.floats(min_value=1.0, max_value=1000.0),
        operations=st.lists(
            st.tuples(st.sampled_from(["charge", "discharge"]), st.floats(min_value=0.0, max_value=500.0)),
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_level_always_within_bounds(self, capacity, operations):
        """No sequence of charges/discharges can break 0 <= level <= capacity."""
        battery = BatteryBank(capacity_kwh=capacity, charge_efficiency=0.75)
        for operation, amount in operations:
            if operation == "charge":
                battery.charge(amount)
            else:
                battery.discharge(amount)
            assert -1e-9 <= battery.level_kwh <= capacity + 1e-9

    @given(
        capacity=st.floats(min_value=1.0, max_value=1000.0),
        charges=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_delivered_never_exceeds_energy_stored(self, capacity, charges):
        """Round-trip losses: you can never discharge more than efficiency * charged."""
        battery = BatteryBank(capacity_kwh=capacity, charge_efficiency=0.75)
        total_in = 0.0
        for amount in charges:
            total_in += battery.charge(amount)
        total_out = battery.discharge(1e9)
        assert total_out <= 0.75 * total_in + 1e-6


class TestProductionModels:
    @given(
        ghi=arrays(np.float64, 24, elements=st.floats(min_value=0.0, max_value=1400.0)),
        temperature=arrays(np.float64, 24, elements=st.floats(min_value=-30.0, max_value=50.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_solar_fraction_bounded(self, ghi, temperature):
        fraction = SolarPanelModel().production_fraction(ghi, temperature)
        assert np.all(fraction >= 0.0) and np.all(fraction <= 1.0)

    @given(
        speed=arrays(np.float64, 24, elements=st.floats(min_value=0.0, max_value=60.0)),
        pressure=st.floats(min_value=60.0, max_value=110.0),
        temperature=st.floats(min_value=-40.0, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_wind_fraction_bounded(self, speed, pressure, temperature):
        fraction = WindTurbineModel().production_fraction(speed, pressure, temperature)
        assert np.all(fraction >= 0.0) and np.all(fraction <= 1.0)

    @given(
        series=arrays(np.float64, 32, elements=st.floats(min_value=0.0, max_value=1.0)),
        target=st.floats(min_value=0.0, max_value=0.85),
    )
    @settings(max_examples=60, deadline=None)
    def test_calibration_hits_target_within_tolerance(self, series, target):
        # Scaling is capped at 1.0 per entry, so the best achievable mean is the
        # fraction of meaningfully non-zero entries; only targets below that are
        # reachable (denormal-sized entries would need astronomical scale factors).
        achievable_mean = float(np.count_nonzero(series > 1e-6)) / series.size
        assume(series.max() > 1e-6 and target <= 0.9 * achievable_mean)
        calibrated = calibrate_series(series, target)
        assert np.all(calibrated >= 0.0) and np.all(calibrated <= 1.0)
        assert abs(float(calibrated.mean()) - target) <= 0.02


class TestAvailabilityProperties:
    @given(
        availability=st.floats(min_value=0.90, max_value=0.99999),
        target=st.floats(min_value=0.99, max_value=0.9999999),
    )
    @settings(max_examples=80, deadline=None)
    def test_datacenters_needed_is_minimal_and_sufficient(self, availability, target):
        n = datacenters_needed(availability, target)
        assert network_availability(n, availability) >= target - 1e-12
        if n > 1:
            # Minimality up to floating-point noise at exact boundaries
            # (e.g. a = 0.9, target = 1 - 1e-7 lands exactly on n = 7).
            assert network_availability(n - 1, availability) < target + 1e-9

    @given(availability=st.floats(min_value=0.5, max_value=0.999999), n=st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_availability_monotone_in_n(self, availability, n):
        assert network_availability(n + 1, availability) >= network_availability(n, availability)


class TestFinancingProperties:
    @given(capital=positive, years=st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_monthly_cost_scales_linearly_with_capital(self, capital, years):
        financing = FinancingModel()
        single = financing.monthly_cost(capital, years)
        double = financing.monthly_cost(2.0 * capital, years)
        assert double == np.float64(2.0) * single or abs(double - 2.0 * single) < 1e-9 * double

    @given(capital=positive, years=st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_longer_amortisation_never_costs_more_per_month(self, capital, years):
        financing = FinancingModel()
        assert financing.monthly_cost(capital, years * 2) <= financing.monthly_cost(capital, years)

    @given(capital=positive)
    @settings(max_examples=40, deadline=None)
    def test_interest_only_cheaper_than_full_carrying_cost(self, capital):
        financing = FinancingModel()
        assert financing.monthly_interest_only(capital) <= financing.monthly_cost(capital, 12.0)
