"""Unit tests for the in-place mutable HiGHS model layer.

Every mutation (add/delete column and row ranges, cost/bound/coefficient
edits) is checked against a from-scratch solve of an equivalent
:class:`~repro.lpsolver.model.Model` — the mutated model must stay
bit-compatible with the LP it claims to represent, across warm starts and
basis projections.
"""

import numpy as np
import pytest

from repro.lpsolver import ConstraintSense, LinearExpression, Model, SolverOptions
from repro.lpsolver import highs_backend

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)


def _reference_model(c, rows, bounds):
    """min c @ x subject to row constraints; all variables >= 0."""
    model = Model(name="ref", sense="min")
    names = [f"x{i}" for i in range(len(c))]
    lower = [b[0] for b in bounds]
    upper = [b[1] for b in bounds]
    idx = model.add_variable_array(names, lower, upper)
    for i, (coeffs, sense, rhs) in enumerate(rows):
        cols = np.array([j for j, v in enumerate(coeffs) if v != 0.0], dtype=np.int64)
        vals = np.array([v for v in coeffs if v != 0.0])
        model.add_linear_block(
            np.zeros(len(cols), dtype=np.int64), cols, vals, sense, [rhs], name=f"r{i}"
        )
    model.set_objective(
        LinearExpression.sum(
            float(ci) * model.variable(f"x{i}") for i, ci in enumerate(c) if ci
        )
    )
    return model


BASE_COST = [1.0, 2.0, 0.5]
BASE_BOUNDS = [(0.0, np.inf)] * 3
BASE_ROWS = [
    ([1.0, 1.0, 1.0], ConstraintSense.GREATER_EQUAL, 6.0),
    ([2.0, 0.0, 1.0], ConstraintSense.LESS_EQUAL, 10.0),
    ([0.0, 1.0, -1.0], ConstraintSense.GREATER_EQUAL, -1.0),
]


def _load_base():
    reference = _reference_model(BASE_COST, BASE_ROWS, BASE_BOUNDS)
    mutable = highs_backend.MutableHighsModel()
    mutable.load(reference.to_row_form())
    return reference, mutable


def _assert_matches(mutable, reference):
    options = SolverOptions()
    got = mutable.solve(options)
    expected = reference.solve(options)
    assert got.is_optimal == expected.is_optimal
    if got.is_optimal:
        assert got.objective == pytest.approx(expected.objective, rel=1e-9)


class TestMutableHighsModel:
    def test_load_and_solve(self):
        reference, mutable = _load_base()
        _assert_matches(mutable, reference)
        assert mutable.num_cols == 3 and mutable.num_rows == 3

    def test_change_costs_and_bounds(self):
        reference, mutable = _load_base()
        mutable.solve(SolverOptions())  # establish a basis to carry
        mutable.change_col_costs(np.array([0, 2]), np.array([3.0, 4.0]))
        mutable.change_col_bounds(np.array([1]), np.array([0.5]), np.array([5.0]))
        new_cost = [3.0, 2.0, 4.0]
        new_bounds = [(0.0, np.inf), (0.5, 5.0), (0.0, np.inf)]
        _assert_matches(mutable, _reference_model(new_cost, BASE_ROWS, new_bounds))

    def test_change_row_bounds_and_coeff(self):
        reference, mutable = _load_base()
        mutable.solve(SolverOptions())
        mutable.change_row_bounds(0, 8.0, np.inf)
        mutable.change_coeff(1, 0, 3.0)
        rows = [
            ([1.0, 1.0, 1.0], ConstraintSense.GREATER_EQUAL, 8.0),
            ([3.0, 0.0, 1.0], ConstraintSense.LESS_EQUAL, 10.0),
            ([0.0, 1.0, -1.0], ConstraintSense.GREATER_EQUAL, -1.0),
        ]
        _assert_matches(mutable, _reference_model(BASE_COST, rows, BASE_BOUNDS))

    def test_add_cols_and_rows(self):
        reference, mutable = _load_base()
        mutable.solve(SolverOptions())
        # New column x3 with cost 0.25, entering existing row 0 with coeff 1.
        mutable.add_cols(
            cost=np.array([0.25]),
            lower=np.array([0.0]),
            upper=np.array([4.0]),
            starts=np.array([0, 1]),
            row_indices=np.array([0]),
            values=np.array([1.0]),
        )
        # New row: x0 + x3 <= 5.
        mutable.add_rows(
            lower=np.array([-np.inf]),
            upper=np.array([5.0]),
            starts=np.array([0, 2]),
            col_indices=np.array([0, 3]),
            values=np.array([1.0, 1.0]),
        )
        assert mutable.num_cols == 4 and mutable.num_rows == 4
        cost = BASE_COST + [0.25]
        bounds = BASE_BOUNDS + [(0.0, 4.0)]
        rows = [
            ([1.0, 1.0, 1.0, 1.0], ConstraintSense.GREATER_EQUAL, 6.0),
            ([2.0, 0.0, 1.0, 0.0], ConstraintSense.LESS_EQUAL, 10.0),
            ([0.0, 1.0, -1.0, 0.0], ConstraintSense.GREATER_EQUAL, -1.0),
            ([1.0, 0.0, 0.0, 1.0], ConstraintSense.LESS_EQUAL, 5.0),
        ]
        _assert_matches(mutable, _reference_model(cost, rows, bounds))

    def test_delete_cols_and_rows(self):
        reference, mutable = _load_base()
        mutable.solve(SolverOptions())
        mutable.delete_cols(np.array([1]))
        mutable.delete_rows(np.array([2]))
        assert mutable.num_cols == 2 and mutable.num_rows == 2
        cost = [1.0, 0.5]
        bounds = [(0.0, np.inf)] * 2
        rows = [
            ([1.0, 1.0], ConstraintSense.GREATER_EQUAL, 6.0),
            ([2.0, 1.0], ConstraintSense.LESS_EQUAL, 10.0),
        ]
        _assert_matches(mutable, _reference_model(cost, rows, bounds))

    def test_basis_snapshot_restore(self):
        reference, mutable = _load_base()
        first = mutable.solve(SolverOptions())
        snapshot = mutable.basis_snapshot()
        assert snapshot is not None
        # A fresh same-shape model adopts the stored basis and re-solves warm.
        other = highs_backend.MutableHighsModel()
        other.load(reference.to_row_form())
        other.restore_basis(snapshot)
        warm = other.solve(SolverOptions())
        assert warm.objective == pytest.approx(first.objective, rel=1e-12)

    def test_snapshot_none_while_projection_dirty(self):
        reference, mutable = _load_base()
        mutable.solve(SolverOptions())
        mutable.delete_cols(np.array([1]))
        # Structural edit without a re-solve: the native basis is stale.
        assert mutable.basis_snapshot() is None
