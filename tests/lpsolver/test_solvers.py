"""Tests for the SciPy/HiGHS solving backends."""

import pytest

from repro.lpsolver import Model, SolveStatus, SolverOptions, solve_model


class TestLinearPrograms:
    def test_simple_minimisation(self):
        model = Model("lp")
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x + 2 * y >= 4)
        model.add_constraint(3 * x + y >= 6)
        model.set_objective(x + y)
        result = model.solve()
        assert result.is_optimal
        assert result.solver in ("highs-direct", "linprog")  # continuous backends
        # Optimum at the intersection of the two constraints: x=1.6, y=1.2.
        assert result.value(x) == pytest.approx(1.6, abs=1e-6)
        assert result.value(y) == pytest.approx(1.2, abs=1e-6)
        assert result.objective == pytest.approx(2.8, abs=1e-6)

    def test_maximisation(self):
        model = Model("lp-max", sense="max")
        x = model.add_variable("x", upper=4.0)
        y = model.add_variable("y", upper=3.0)
        model.add_constraint(x + y <= 5)
        model.set_objective(2 * x + 3 * y)
        result = model.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(2 * 2 + 3 * 3, abs=1e-6)

    def test_objective_constant_included(self):
        model = Model("lp-const")
        x = model.add_variable("x", lower=1.0, upper=2.0)
        model.set_objective(x + 100.0)
        result = model.solve()
        assert result.objective == pytest.approx(101.0, abs=1e-6)

    def test_infeasible_detected(self):
        model = Model("lp-infeasible")
        x = model.add_variable("x", upper=1.0)
        model.add_constraint(x >= 2.0)
        model.set_objective(x)
        result = model.solve()
        assert result.status is SolveStatus.INFEASIBLE
        assert not result.is_optimal
        assert result.values == {}

    def test_unbounded_detected(self):
        model = Model("lp-unbounded", sense="max")
        x = model.add_variable("x")
        model.set_objective(x)
        result = model.solve()
        assert result.status in (SolveStatus.UNBOUNDED, SolveStatus.INFEASIBLE, SolveStatus.ERROR)
        assert not result.is_optimal

    def test_solution_satisfies_constraints(self):
        model = Model("lp-feasibility")
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(2 * x + y >= 10)
        model.add_constraint(x + 3 * y >= 15)
        model.set_objective(4 * x + 5 * y)
        result = model.solve()
        assert result.is_optimal
        assert model.check_solution(result.values) == []

    def test_equality_constraints(self):
        model = Model("lp-eq")
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x + y == 10)
        model.set_objective(x + 2 * y)
        result = model.solve()
        assert result.is_optimal
        assert result.value(x) == pytest.approx(10.0, abs=1e-6)
        assert result.value(y) == pytest.approx(0.0, abs=1e-6)


class TestMixedIntegerPrograms:
    def test_knapsack_milp(self):
        model = Model("knapsack", sense="max")
        values = [10.0, 13.0, 7.0, 4.0]
        weights = [5.0, 6.0, 4.0, 2.0]
        items = [model.add_binary(f"item{i}") for i in range(4)]
        model.add_constraint(
            sum((weights[i] * items[i] for i in range(4)), start=0 * items[0]) <= 10
        )
        model.set_objective(sum((values[i] * items[i] for i in range(4)), start=0 * items[0]))
        result = model.solve()
        assert result.is_optimal
        assert result.solver == "milp"
        chosen = [i for i in range(4) if result.value(items[i]) > 0.5]
        assert chosen == [1, 2] or result.objective == pytest.approx(20.0, abs=1e-6)

    def test_integrality_respected(self):
        model = Model("int")
        n = model.add_integer("n", lower=0, upper=10)
        model.add_constraint(2 * n >= 5)
        model.set_objective(n)
        result = model.solve()
        assert result.is_optimal
        assert result.value(n) == pytest.approx(3.0, abs=1e-6)

    def test_force_continuous_relaxation(self):
        model = Model("relaxed")
        n = model.add_integer("n", lower=0, upper=10)
        model.add_constraint(2 * n >= 5)
        model.set_objective(n)
        result = solve_model(model, SolverOptions(force_continuous=True))
        assert result.solver in ("highs-direct", "linprog")  # continuous backends
        assert result.value(n) == pytest.approx(2.5, abs=1e-6)

    def test_milp_infeasible(self):
        model = Model("milp-infeasible")
        b = model.add_binary("b")
        model.add_constraint(b >= 2)
        model.set_objective(b)
        result = model.solve()
        assert result.status is SolveStatus.INFEASIBLE

    def test_time_limit_option_accepted(self):
        model = Model("milp-timelimit")
        b = model.add_binary("b")
        model.add_constraint(b >= 1)
        model.set_objective(b)
        result = model.solve(SolverOptions(time_limit=10.0))
        assert result.is_optimal


class TestResultHelpers:
    def test_value_of_expression(self):
        model = Model("expr-eval")
        x = model.add_variable("x", lower=2.0, upper=2.0)
        y = model.add_variable("y", lower=3.0, upper=3.0)
        model.set_objective(x + y)
        result = model.solve()
        assert result.value(x + 2 * y) == pytest.approx(8.0, abs=1e-6)

    def test_value_rejects_unknown_type(self):
        model = Model("bad-value")
        x = model.add_variable("x", upper=1.0)
        model.set_objective(x)
        result = model.solve()
        with pytest.raises(TypeError):
            result.value("x")  # type: ignore[arg-type]

    def test_values_by_name(self):
        model = Model("by-name")
        x = model.add_variable("x", lower=1.0, upper=1.0)
        y = model.add_variable("y", lower=4.0, upper=4.0)
        model.set_objective(x + y)
        result = model.solve()
        named = result.values_by_name({"x": x, "y": y})
        assert named == {"x": pytest.approx(1.0), "y": pytest.approx(4.0)}
