"""Typed non-optimal statuses: SolverStatusError and the check= knobs."""

import numpy as np
import pytest

from repro.lpsolver import (
    ConstraintSense,
    Model,
    SolverOptions,
    SolverStatusError,
    SolveStatus,
    highs_backend,
)

pytestmark = pytest.mark.skipif(
    not highs_backend.AVAILABLE, reason="direct HiGHS backend unavailable"
)


def _model(rows, sense="min", upper=np.inf):
    """min x0 + x1 subject to ``rows`` over two nonnegative variables."""
    model = Model(name="status", sense=sense)
    model.add_variable_array(["x0", "x1"], [0.0, 0.0], [upper, upper])
    for i, (coeffs, row_sense, rhs) in enumerate(rows):
        cols = np.array([j for j, v in enumerate(coeffs) if v != 0.0], dtype=np.int64)
        vals = np.array([v for v in coeffs if v != 0.0])
        model.add_linear_block(
            np.zeros(len(cols), dtype=np.int64), cols, vals, row_sense, [rhs], name=f"r{i}"
        )
    model.set_objective(model.variable("x0") + model.variable("x1"))
    return model


FEASIBLE_ROWS = [([1.0, 1.0], ConstraintSense.GREATER_EQUAL, 2.0)]
INFEASIBLE_ROWS = [
    ([1.0, 1.0], ConstraintSense.GREATER_EQUAL, 4.0),
    ([1.0, 1.0], ConstraintSense.LESS_EQUAL, 1.0),
]


class TestRowFormCheck:
    def test_check_raises_typed_error_on_infeasible(self):
        row_form = _model(INFEASIBLE_ROWS).to_row_form()
        with pytest.raises(SolverStatusError) as excinfo:
            highs_backend.solve_row_form(row_form, SolverOptions(), check=True)
        error = excinfo.value
        assert error.status is SolveStatus.INFEASIBLE
        assert error.solver == "highs-direct"
        assert "infeasible" in str(error)

    def test_without_check_the_status_is_returned_not_raised(self):
        row_form = _model(INFEASIBLE_ROWS).to_row_form()
        result = highs_backend.solve_row_form(row_form, SolverOptions())
        assert result.status is SolveStatus.INFEASIBLE
        assert not result.is_optimal
        with pytest.raises(SolverStatusError):
            result.raise_for_status()

    def test_raise_for_status_returns_self_when_optimal(self):
        row_form = _model(FEASIBLE_ROWS).to_row_form()
        result = highs_backend.solve_row_form(row_form, SolverOptions(), check=True)
        assert result.raise_for_status() is result
        assert result.objective == pytest.approx(2.0)


class TestMutableModelCheck:
    def test_mutated_to_infeasible_raises_and_recovers(self):
        mutable = highs_backend.MutableHighsModel()
        mutable.load(_model(FEASIBLE_ROWS).to_row_form())
        assert mutable.solve(SolverOptions(), check=True).objective == pytest.approx(2.0)

        # Force x0 + x1 >= 2 against upper bounds summing to 1: infeasible.
        mutable.change_col_bounds(
            np.array([0, 1], dtype=np.int64),
            np.array([0.0, 0.0]),
            np.array([0.5, 0.5]),
        )
        with pytest.raises(SolverStatusError) as excinfo:
            mutable.solve(SolverOptions(), check=True)
        assert excinfo.value.status is SolveStatus.INFEASIBLE

        # Undo the mutation; a basis-cleared resolve is optimal again.
        mutable.change_col_bounds(
            np.array([0, 1], dtype=np.int64),
            np.array([0.0, 0.0]),
            np.array([np.inf, np.inf]),
        )
        mutable.clear_basis()
        recovered = mutable.solve(SolverOptions(), check=True)
        assert recovered.objective == pytest.approx(2.0)

    def test_error_carries_solver_context(self):
        mutable = highs_backend.MutableHighsModel()
        mutable.load(_model(INFEASIBLE_ROWS).to_row_form())
        with pytest.raises(SolverStatusError) as excinfo:
            mutable.solve(SolverOptions(), check=True)
        error = excinfo.value
        assert error.status is SolveStatus.INFEASIBLE
        assert isinstance(error.iterations, int)
        assert isinstance(error, RuntimeError)
