"""Tests for batched (block) constraint ingestion and row-form compilation."""

import numpy as np
import pytest

from repro.lpsolver import (
    ConstraintSense,
    LinearConstraintBlock,
    LinearExpression,
    Model,
    ModelError,
    SolverOptions,
)
from repro.lpsolver.blocks import make_block


class TestMakeBlock:
    def test_zero_coefficients_dropped(self):
        block = make_block([0, 0, 1], [0, 1, 0], [1.0, 0.0, 2.0],
                           ConstraintSense.LESS_EQUAL, [5.0, 5.0])
        assert block.num_entries == 2
        assert block.num_rows == 2

    def test_trusted_path_keeps_explicit_zeros(self):
        block = make_block([0, 0], [0, 1], [1.0, 0.0],
                           ConstraintSense.LESS_EQUAL, [5.0], validate=False)
        assert block.num_entries == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_block([0, 1], [0], [1.0, 2.0], ConstraintSense.LESS_EQUAL, [1.0, 1.0])

    def test_row_outside_rhs_rejected(self):
        with pytest.raises(ValueError):
            make_block([3], [0], [1.0], ConstraintSense.LESS_EQUAL, [1.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            make_block([0], [0], [np.inf], ConstraintSense.LESS_EQUAL, [1.0])

    def test_column_outside_model_rejected(self):
        model = Model("m")
        model.add_variable("x")
        with pytest.raises(ValueError):
            model.add_linear_block([0], [5], [1.0], ConstraintSense.LESS_EQUAL, [1.0])


class TestVariableArrays:
    def test_indices_and_bounds(self):
        model = Model("m")
        idx = model.add_variable_array(["a", "b", "c"], lower=[0.0, 1.0, 2.0], upper=9.0)
        assert list(idx) == [0, 1, 2]
        assert model.bounds(1) == (1.0, 9.0)
        assert model.variable("c").index == 2

    def test_duplicate_names_rejected(self):
        model = Model("m")
        model.add_variable("a")
        with pytest.raises(ModelError):
            model.add_variable_array(["b", "a"])
        # A rejected batch must not leave phantom names behind.
        assert model.num_variables == 1
        with pytest.raises(ModelError):
            model.variable("b")
        assert list(model.add_variable_array(["b", "c"])) == [1, 2]

    def test_intra_batch_duplicates_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_variable_array(["x", "x"])
        assert model.num_variables == 0

    def test_bad_bounds_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_variable_array(["a"], lower=2.0, upper=1.0)

    def test_mixes_with_scalar_variables(self):
        model = Model("m")
        x = model.add_variable("x")
        idx = model.add_variable_array(["y", "z"])
        assert x.index == 0 and list(idx) == [1, 2]
        assert [v.name for v in model.variables] == ["x", "y", "z"]


class TestBlockCompilation:
    def _cover_model(self):
        """min sum(x) s.t. x_i >= i+1 (block), sum(x) <= 100 (scalar)."""
        model = Model("cover")
        idx = model.add_variable_array([f"x{i}" for i in range(3)], upper=50.0)
        model.add_linear_block(
            rows=[0, 1, 2], cols=idx, vals=[1.0, 1.0, 1.0],
            sense=ConstraintSense.GREATER_EQUAL, rhs=[1.0, 2.0, 3.0], name="floor",
        )
        total = LinearExpression({int(i): 1.0 for i in idx})
        model.add_constraint(total <= 100.0, name="budget")
        model.set_objective(total)
        return model, idx

    def test_num_constraints_counts_block_rows(self):
        model, _ = self._cover_model()
        assert model.num_constraints == 4

    def test_to_matrices_merges_blocks_and_scalars(self):
        model, _ = self._cover_model()
        compiled = model.to_matrices()
        dense = compiled.a_ub.toarray()
        assert dense.shape == (4, 3)
        # Scalar budget row first, then the negated >= block rows.
        np.testing.assert_allclose(dense[0], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(dense[1:], -np.eye(3))
        np.testing.assert_allclose(compiled.b_ub, [100.0, -1.0, -2.0, -3.0])

    def test_row_form_matches_matrices(self):
        model, _ = self._cover_model()
        row_form = model.to_row_form()
        assert row_form.shape == (4, 3)
        np.testing.assert_allclose(row_form.row_upper, [100.0, np.inf, np.inf, np.inf])
        np.testing.assert_allclose(row_form.row_lower, [-np.inf, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(row_form.matrix.toarray()[1:], np.eye(3))

    def test_solves_to_expected_optimum(self):
        model, _ = self._cover_model()
        result = model.solve()
        assert result.is_optimal
        assert result.objective == pytest.approx(6.0, abs=1e-9)
        np.testing.assert_allclose(result.x, [1.0, 2.0, 3.0], atol=1e-9)

    def test_backends_agree(self):
        model, _ = self._cover_model()
        direct = model.solve(SolverOptions(backend="auto"))
        linprog = model.solve(SolverOptions(backend="linprog"))
        assert direct.objective == pytest.approx(linprog.objective, abs=1e-9)

    def test_check_solution_covers_block_rows(self):
        model, idx = self._cover_model()
        good = {int(i): float(i + 1) for i in idx}
        assert model.check_solution(good) == []
        bad = {int(i): 0.0 for i in idx}
        violations = model.check_solution(bad)
        assert len(violations) == 3
        assert all("floor" in violation for violation in violations)

    def test_equality_block(self):
        model = Model("eq")
        idx = model.add_variable_array(["a", "b"], upper=10.0)
        model.add_linear_block([0], [idx[0]], [1.0], ConstraintSense.EQUAL, [4.0])
        model.set_objective(LinearExpression({0: 1.0, 1: 1.0}))
        result = model.solve()
        assert result.is_optimal
        assert result.value_array(idx)[0] == pytest.approx(4.0, abs=1e-9)


class TestBlockViolations:
    def test_violations_by_sense(self):
        x = np.array([1.0, 5.0])
        block = LinearConstraintBlock(
            rows=np.array([0, 1]), cols=np.array([0, 1]), vals=np.array([1.0, 1.0]),
            sense=ConstraintSense.LESS_EQUAL, rhs=np.array([2.0, 2.0]),
        )
        assert list(block.violations(x, 1e-6)) == [1]
        block.sense = ConstraintSense.GREATER_EQUAL
        assert list(block.violations(x, 1e-6)) == [0]
        block.sense = ConstraintSense.EQUAL
        assert list(block.violations(np.array([2.0, 2.0]), 1e-6)) == []
