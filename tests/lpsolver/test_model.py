"""Tests for the Model container and its compilation to matrix form."""

import numpy as np
import pytest

from repro.lpsolver import Model, ModelError, VariableKind


class TestVariableManagement:
    def test_duplicate_names_rejected(self):
        model = Model("m")
        model.add_variable("x")
        with pytest.raises(ModelError):
            model.add_variable("x")

    def test_lookup_by_name(self):
        model = Model("m")
        x = model.add_variable("x")
        assert model.variable("x") is x
        with pytest.raises(ModelError):
            model.variable("missing")

    def test_bad_bounds_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_variable("x", lower=2.0, upper=1.0)

    def test_set_bounds_and_fix(self):
        model = Model("m")
        x = model.add_variable("x")
        model.set_bounds(x, lower=1.0, upper=4.0)
        assert model.bounds(x) == (1.0, 4.0)
        model.fix(x, 2.5)
        assert model.bounds(x) == (2.5, 2.5)

    def test_set_bounds_inconsistent_raises(self):
        model = Model("m")
        x = model.add_variable("x", lower=0.0, upper=1.0)
        with pytest.raises(ModelError):
            model.set_bounds(x, lower=2.0)

    def test_integer_and_binary_kinds(self):
        model = Model("m")
        model.add_variable("x")
        assert not model.is_mixed_integer
        model.add_integer("n", lower=0, upper=10)
        assert model.is_mixed_integer
        b = model.add_binary("b")
        assert b.kind is VariableKind.BINARY

    def test_unknown_sense_rejected(self):
        with pytest.raises(ModelError):
            Model("m", sense="maximize-ish")


class TestConstraintsAndObjective:
    def test_constant_infeasible_constraint_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_constraint(
                (model.add_variable("x") * 0) >= 1.0  # collapses to 0 >= 1
            )

    def test_constant_feasible_constraint_skipped(self):
        model = Model("m")
        x = model.add_variable("x")
        model.add_constraint((x * 0) <= 1.0)
        assert model.num_constraints == 0

    def test_add_constraints_bulk(self):
        model = Model("m")
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraints([x + y >= 1, x - y <= 2])
        assert model.num_constraints == 2

    def test_non_constraint_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_constraint("x >= 1")  # type: ignore[arg-type]

    def test_objective_value_for_candidate(self):
        model = Model("m")
        x = model.add_variable("x")
        model.set_objective(3 * x + 1)
        assert model.objective_value({x.index: 2.0}) == pytest.approx(7.0)


class TestCompilation:
    def test_matrices_shapes(self):
        model = Model("m")
        x = model.add_variable("x", upper=10)
        y = model.add_variable("y", upper=10)
        model.add_constraint(x + y <= 5)
        model.add_constraint(x - y >= 1)
        model.add_constraint(x + 2 * y == 3)
        model.set_objective(x + y)
        compiled = model.to_matrices()
        assert compiled.a_ub.shape == (2, 2)
        assert compiled.a_eq.shape == (1, 2)
        assert compiled.cost.shape == (2,)
        # Matrices are assembled as scipy.sparse; >= constraints are flipped
        # into <= rows.
        np.testing.assert_allclose(compiled.a_ub.toarray()[1], [-1.0, 1.0])
        np.testing.assert_allclose(compiled.b_ub[1], [-1.0])

    def test_maximisation_negates_cost(self):
        model = Model("m", sense="max")
        x = model.add_variable("x", upper=1)
        model.set_objective(5 * x)
        compiled = model.to_matrices()
        assert compiled.cost[0] == pytest.approx(-5.0)
        assert compiled.maximise

    def test_objective_constant_carried(self):
        model = Model("m")
        x = model.add_variable("x", upper=1)
        model.set_objective(x + 42.0)
        compiled = model.to_matrices()
        assert compiled.objective_constant == pytest.approx(42.0)

    def test_empty_constraint_blocks_are_none(self):
        model = Model("m")
        model.add_variable("x")
        compiled = model.to_matrices()
        assert compiled.a_ub is None and compiled.a_eq is None


class TestSolutionChecking:
    def test_check_solution_reports_bound_violations(self):
        model = Model("m")
        x = model.add_variable("x", lower=0.0, upper=1.0)
        violations = model.check_solution({x.index: 2.0})
        assert len(violations) == 1 and "outside" in violations[0]

    def test_check_solution_reports_constraint_violations(self):
        model = Model("m")
        x = model.add_variable("x", upper=10.0)
        model.add_constraint((x >= 5).named("floor"))
        violations = model.check_solution({x.index: 1.0})
        assert any("floor" in violation for violation in violations)

    def test_check_solution_accepts_feasible_point(self):
        model = Model("m")
        x = model.add_variable("x", upper=10.0)
        y = model.add_variable("y", upper=10.0)
        model.add_constraint(x + y >= 2)
        assert model.check_solution({x.index: 1.0, y.index: 1.5}) == []

    def test_repr_mentions_kind_and_sizes(self):
        model = Model("demo")
        model.add_variable("x")
        assert "LP" in repr(model)
        model.add_binary("b")
        assert "MILP" in repr(model)
