"""Tests for the linear-expression algebra."""


import pytest

from repro.lpsolver import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Model,
    Variable,
    VariableKind,
)


@pytest.fixture()
def xy():
    model = Model("expr")
    return model.add_variable("x"), model.add_variable("y")


class TestVariableArithmetic:
    def test_variable_to_expression(self, xy):
        x, _ = xy
        expr = x.to_expression()
        assert expr.coefficients == {x.index: 1.0}
        assert expr.constant == 0.0

    def test_addition_of_variables(self, xy):
        x, y = xy
        expr = x + y
        assert expr.coefficients == {x.index: 1.0, y.index: 1.0}

    def test_scalar_multiplication(self, xy):
        x, _ = xy
        expr = 3 * x
        assert expr.coefficients == {x.index: 3.0}
        assert (x * 3).coefficients == expr.coefficients

    def test_subtraction_and_negation(self, xy):
        x, y = xy
        expr = x - 2 * y
        assert expr.coefficients == {x.index: 1.0, y.index: -2.0}
        neg = -expr
        assert neg.coefficients == {x.index: -1.0, y.index: 2.0}

    def test_division_by_scalar(self, xy):
        x, _ = xy
        expr = (4 * x) / 2
        assert expr.coefficients == {x.index: 2.0}

    def test_division_by_zero_raises(self, xy):
        x, _ = xy
        with pytest.raises(ZeroDivisionError):
            _ = x.to_expression() / 0

    def test_rsub_with_constant(self, xy):
        x, _ = xy
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.coefficients == {x.index: -1.0}


class TestLinearExpression:
    def test_sum_of_terms(self, xy):
        x, y = xy
        expr = LinearExpression.sum([x, 2 * y, 5.0])
        assert expr.coefficients == {x.index: 1.0, y.index: 2.0}
        assert expr.constant == 5.0

    def test_zero_coefficients_are_dropped(self, xy):
        x, y = xy
        expr = x + y - x
        assert x.index not in expr.coefficients
        assert expr.coefficients == {y.index: 1.0}

    def test_from_value_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearExpression.from_value(float("nan"))

    def test_from_value_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            LinearExpression.from_value("not an expression")

    def test_multiplying_two_expressions_raises(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            _ = x.to_expression() * y.to_expression()

    def test_evaluate(self, xy):
        x, y = xy
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({x.index: 2.0, y.index: 1.0}) == pytest.approx(8.0)

    def test_evaluate_missing_values_default_to_zero(self, xy):
        x, y = xy
        expr = 2 * x + 3 * y
        assert expr.evaluate({x.index: 1.0}) == pytest.approx(2.0)

    def test_is_constant(self, xy):
        x, _ = xy
        assert LinearExpression.from_value(4.0).is_constant()
        assert not (x + 1).is_constant()

    def test_copy_is_independent(self, xy):
        x, _ = xy
        original = x + 1
        clone = original.copy()
        clone.coefficients[x.index] = 99.0
        assert original.coefficients[x.index] == 1.0


class TestConstraints:
    def test_le_builds_constraint(self, xy):
        x, y = xy
        constraint = x + y <= 5
        assert isinstance(constraint, Constraint)
        assert constraint.sense is ConstraintSense.LESS_EQUAL
        assert constraint.rhs == pytest.approx(5.0)

    def test_ge_builds_constraint(self, xy):
        x, _ = xy
        constraint = 2 * x >= 3
        assert constraint.sense is ConstraintSense.GREATER_EQUAL
        assert constraint.rhs == pytest.approx(3.0)

    def test_eq_builds_constraint(self, xy):
        x, y = xy
        constraint = x + y == 7
        assert constraint.sense is ConstraintSense.EQUAL
        assert constraint.rhs == pytest.approx(7.0)

    def test_violation_measures(self, xy):
        x, _ = xy
        le = x <= 1
        ge = x >= 3
        eq = x == 2
        values = {x.index: 2.0}
        assert le.violation(values) == pytest.approx(1.0)
        assert ge.violation(values) == pytest.approx(1.0)
        assert eq.violation(values) == pytest.approx(0.0)

    def test_named_constraint(self, xy):
        x, _ = xy
        constraint = (x >= 0).named("non_negative")
        assert constraint.name == "non_negative"

    def test_trivially_feasible_detection(self):
        expr = LinearExpression({}, -1.0)
        assert Constraint(expr, ConstraintSense.LESS_EQUAL).is_trivially_feasible()
        assert not Constraint(expr, ConstraintSense.GREATER_EQUAL).is_trivially_feasible()


class TestVariableIdentity:
    def test_variable_hash_and_repr(self):
        model = Model("identity")
        x = model.add_variable("x")
        assert "x" in repr(x)
        assert hash(x) == hash(Variable("x", x.index, VariableKind.CONTINUOUS))  # reprolint: ok(DET002) exercises Variable.__hash__ in-process equality only

    def test_binary_bounds_forced(self):
        model = Model("binary")
        b = model.add_binary("b")
        assert model.bounds(b) == (0.0, 1.0)
        assert b.kind is VariableKind.BINARY
