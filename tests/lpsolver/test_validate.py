"""Corrupted-model fixtures for the ``REPRO_VALIDATE=1`` structural validator.

Each validator check gets a deliberately broken :class:`RowFormLP` (or a
tampered :class:`MutableHighsModel`) that must trigger exactly that
violation, plus the matching sound model that must pass clean — the
validator is only trustworthy if it is silent on every model the assembly
paths legitimately produce.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.lpsolver.batch import stack_block_diagonal
from repro.lpsolver.highs_backend import MutableHighsModel
from repro.lpsolver.model import RowFormLP
from repro.lpsolver.solvers import SolverOptions
from repro.lpsolver.validate import (
    LPValidationError,
    row_form_violations,
    validate_block_offsets,
    validate_mutable_model,
    validate_row_form,
    validation_enabled,
)

INF = float("inf")


def make_lp(**overrides) -> RowFormLP:
    """A sound 2x2 LP: minimise x+y subject to x>=1, y>=1, 0<=x,y<=10."""
    fields = dict(
        cost=np.array([1.0, 1.0]),
        a_indptr=np.array([0, 1, 2]),
        a_indices=np.array([0, 1]),
        a_data=np.array([1.0, 1.0]),
        shape=(2, 2),
        row_lower=np.array([1.0, 1.0]),
        row_upper=np.array([INF, INF]),
        lower=np.array([0.0, 0.0]),
        upper=np.array([10.0, 10.0]),
        integrality=np.zeros(2, dtype=np.int64),
        maximise=False,
        objective_constant=0.0,
    )
    fields.update(overrides)
    return RowFormLP(**fields)


def sole_violation(lp: RowFormLP, **kwargs) -> str:
    violations = row_form_violations(lp, **kwargs)
    assert len(violations) == 1, violations
    return violations[0]


class TestRowFormChecks:
    def test_sound_model_is_clean(self):
        assert row_form_violations(make_lp()) == []

    def test_nan_cost(self):
        message = sole_violation(make_lp(cost=np.array([1.0, np.nan])))
        assert "cost contains NaN" in message
        assert "index 1" in message

    def test_inf_cost(self):
        assert "cost contains Inf" in sole_violation(make_lp(cost=np.array([INF, 1.0])))

    def test_nan_in_matrix_data(self):
        message = sole_violation(make_lp(a_data=np.array([np.nan, 1.0])))
        assert "a_data contains NaN" in message

    def test_inf_bound_is_legal_but_nan_bound_is_not(self):
        # +/-inf bounds are the normal way to express one-sided constraints.
        assert row_form_violations(make_lp(lower=np.array([-INF, 0.0]))) == []
        message = sole_violation(make_lp(upper=np.array([np.nan, 10.0])))
        assert "upper contains NaN" in message

    def test_crossed_column_bounds(self):
        message = sole_violation(make_lp(lower=np.array([0.0, 5.0]), upper=np.array([10.0, 2.0])))
        assert "crossed column bounds" in message
        assert "column 1" in message

    def test_crossed_row_bounds(self):
        message = sole_violation(
            make_lp(row_lower=np.array([3.0, 1.0]), row_upper=np.array([2.0, INF]))
        )
        assert "crossed row bounds" in message
        assert "row 0" in message

    def test_wrong_cost_length(self):
        message = sole_violation(make_lp(cost=np.array([1.0])))
        assert "cost has length 1, expected 2" in message

    def test_indices_data_length_mismatch(self):
        message = sole_violation(make_lp(a_data=np.array([1.0, 1.0, 1.0])))
        assert "lengths differ" in message

    def test_indptr_must_start_at_zero(self):
        message = sole_violation(make_lp(a_indptr=np.array([1, 1, 2])))
        assert "must start at 0" in message

    def test_indptr_must_end_at_nnz(self):
        message = sole_violation(make_lp(a_indptr=np.array([0, 1, 3])))
        assert "must end at nnz=2" in message

    def test_indptr_must_be_monotone(self):
        violations = row_form_violations(make_lp(a_indptr=np.array([0, 2, 1])))
        assert any("not monotonically non-decreasing" in v for v in violations)

    def test_row_index_out_of_range(self):
        message = sole_violation(make_lp(a_indices=np.array([0, 7])))
        assert "a_indices outside [0, 2)" in message

    def test_negative_row_index(self):
        message = sole_violation(make_lp(a_indices=np.array([-1, 1])))
        assert "a_indices outside [0, 2)" in message

    def test_duplicate_coo_coordinate(self):
        # Column 0 carries two entries for row 0: HiGHS would sum them.
        lp = make_lp(
            a_indptr=np.array([0, 2, 3]),
            a_indices=np.array([0, 0, 1]),
            a_data=np.array([1.0, 2.0, 1.0]),
        )
        message = sole_violation(lp)
        assert "duplicate COO coordinate (row 0, col 0)" in message

    def test_multiple_violations_all_reported(self):
        lp = make_lp(cost=np.array([np.nan, 1.0]), lower=np.array([0.0, 50.0]))
        violations = row_form_violations(lp)
        assert len(violations) == 2
        with pytest.raises(LPValidationError) as excinfo:
            validate_row_form(lp, "corrupted fixture")
        assert excinfo.value.label == "corrupted fixture"
        assert excinfo.value.violations == violations
        assert "corrupted fixture" in str(excinfo.value)


class TestEmptyRowsAndOrphans:
    def make_staged(self) -> RowFormLP:
        """Row 2 has no entries and bounds excluding 0 (a staged coupling row)."""
        return make_lp(
            shape=(3, 2),
            row_lower=np.array([1.0, 1.0, 1.0]),
            row_upper=np.array([INF, INF, INF]),
        )

    def test_infeasible_empty_row_flagged(self):
        message = sole_violation(self.make_staged())
        assert "empty row 2 with bounds excluding 0" in message

    def test_dead_weight_empty_row_flagged(self):
        lp = make_lp(
            shape=(3, 2),
            row_lower=np.array([1.0, 1.0, -INF]),
            row_upper=np.array([INF, INF, INF]),
        )
        message = sole_violation(lp)
        assert "1 empty row(s) (first: 2)" in message

    def test_staged_assembly_escape_hatch(self):
        # The incremental evaluator loads coupling rows before any columns
        # exist; load-time validation must accept that via check_empty_rows.
        assert row_form_violations(self.make_staged(), check_empty_rows=False) == []

    def test_pinned_orphan_column_is_legal(self):
        # Uniform per-site blocks fix unused variable families at lb=ub=0
        # with nonzero cost and no matrix entries — by design, not a bug.
        lp = make_lp(
            cost=np.array([1.0, 1.0, 5.0]),
            shape=(2, 3),
            a_indptr=np.array([0, 1, 2, 2]),
            lower=np.array([0.0, 0.0, 0.0]),
            upper=np.array([10.0, 10.0, 0.0]),
            integrality=np.zeros(3, dtype=np.int64),
        )
        assert row_form_violations(lp) == []

    def test_orphan_column_unbounded_below_flagged(self):
        # Positive cost pushing toward lower = -inf with no constraining row:
        # the minimisation is unbounded by construction.
        lp = make_lp(
            cost=np.array([1.0, 1.0, 5.0]),
            shape=(2, 3),
            a_indptr=np.array([0, 1, 2, 2]),
            lower=np.array([0.0, 0.0, -INF]),
            upper=np.array([10.0, 10.0, 0.0]),
            integrality=np.zeros(3, dtype=np.int64),
        )
        message = sole_violation(lp)
        assert "orphan column 2" in message
        assert "unbounded by construction" in message

    def test_orphan_column_unbounded_above_flagged(self):
        lp = make_lp(
            cost=np.array([1.0, 1.0, -5.0]),
            shape=(2, 3),
            a_indptr=np.array([0, 1, 2, 2]),
            lower=np.array([0.0, 0.0, 0.0]),
            upper=np.array([10.0, 10.0, INF]),
            integrality=np.zeros(3, dtype=np.int64),
        )
        assert "orphan column 2" in sole_violation(lp)


class TestBlockOffsets:
    def test_real_stack_passes(self):
        stacked, col_offsets, row_offsets = stack_block_diagonal([make_lp(), make_lp()])
        validate_block_offsets(stacked, col_offsets, row_offsets, 2)

    def test_wrong_offset_count(self):
        stacked, col_offsets, row_offsets = stack_block_diagonal([make_lp(), make_lp()])
        with pytest.raises(LPValidationError, match="must have 4 entries"):
            validate_block_offsets(stacked, col_offsets, row_offsets, 3)

    def test_offsets_must_cover_dimensions(self):
        stacked, col_offsets, row_offsets = stack_block_diagonal([make_lp(), make_lp()])
        short = col_offsets.copy()
        short[-1] -= 1
        with pytest.raises(LPValidationError, match="do not cover the stacked columns"):
            validate_block_offsets(stacked, short, row_offsets, 2)

    def test_offsets_must_be_monotone(self):
        stacked, col_offsets, row_offsets = stack_block_diagonal([make_lp(), make_lp()])
        bad = row_offsets.copy()
        bad[1], bad[2] = bad[2], bad[1]
        with pytest.raises(LPValidationError, match="not monotone"):
            validate_block_offsets(stacked, col_offsets, bad, 2)

    def test_entry_crossing_block_boundary(self):
        stacked, col_offsets, row_offsets = stack_block_diagonal([make_lp(), make_lp()])
        # Move the last block's final entry into the first block's row range.
        indices = np.asarray(stacked.a_indices).copy()
        indices[-1] = 0
        leaky = dataclasses.replace(stacked, a_indices=indices)
        with pytest.raises(LPValidationError) as excinfo:
            validate_block_offsets(leaky, col_offsets, row_offsets, 2)
        assert any("crosses block boundaries" in v for v in excinfo.value.violations)


class TestValidationKnob:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert validation_enabled()

    @pytest.mark.parametrize("value", ["", "0", "off", "nope"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert not validation_enabled()

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert not validation_enabled()

    def test_error_is_an_assertion(self):
        # The retry ladders catch SolverStatusError; an assembly bug must
        # never be retried into silence.
        assert issubclass(LPValidationError, AssertionError)


class TestMutableModelValidation:
    def load_model(self) -> MutableHighsModel:
        model = MutableHighsModel()
        model.load(make_lp())
        return model

    def test_sound_model_passes_and_solves(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = self.load_model()
        validate_mutable_model(model)
        result = model.solve(SolverOptions(), check=True)
        assert result.objective == pytest.approx(2.0)

    def test_load_rejects_corrupted_model_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = MutableHighsModel()
        with pytest.raises(LPValidationError, match="MutableHighsModel.load"):
            model.load(make_lp(cost=np.array([np.nan, 1.0])))

    def test_load_skips_validation_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        model = MutableHighsModel()
        # Crossed bounds would be caught with the knob on; off = zero checks.
        model.load(make_lp(lower=np.array([5.0, 0.0]), upper=np.array([2.0, 10.0])))

    def test_dimension_drift_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = self.load_model()
        model.num_cols += 1  # simulate a splice that miscounted an add range
        with pytest.raises(LPValidationError) as excinfo:
            model.solve(SolverOptions())
        assert any("tracked num_cols=3" in v for v in excinfo.value.violations)

    def test_basis_length_drift_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = self.load_model()
        model.solve(SolverOptions(), check=True)
        # Simulate basis padding skipped after an add_cols splice.
        model._col_status = np.zeros(model.num_cols + 2, dtype=np.int64)
        model._row_status = np.zeros(model.num_rows, dtype=np.int64)
        with pytest.raises(LPValidationError) as excinfo:
            validate_mutable_model(model)
        assert any("basis padding after a splice drifted" in v for v in excinfo.value.violations)

    def test_spliced_crossed_bounds_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = self.load_model()
        # Corrupt the live HiGHS model directly (bypassing load validation),
        # as a buggy in-place bounds splice would.
        model._highs.changeColBounds(0, 5.0, 2.0)
        with pytest.raises(LPValidationError) as excinfo:
            model.solve(SolverOptions())
        assert any("spliced crossed column bounds" in v for v in excinfo.value.violations)
