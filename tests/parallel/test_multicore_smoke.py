"""Multi-core smoke: process executor at 4 workers is bit-identical to serial.

CI runs these on a multi-core runner (``pytest -m multicore``); on the
single-CPU dev container they still execute (oversubscribed, a little
slower), so the pickling boundary is exercised in every tier-1 run too.
"""

import pytest

from repro.core import EnergySources, HeuristicSolver, SearchSettings, SitingProblem, StorageMode
from repro.scenarios import ExperimentRunner, get_scenario

pytestmark = pytest.mark.multicore


def test_smoke_sweep_process_matches_serial():
    sweep = get_scenario("smoke").build()
    serial = ExperimentRunner(workers=1, executor="serial").run(sweep)
    process = ExperimentRunner(workers=4, executor="process").run(sweep)
    assert [(p.overrides, p.record) for p in process] == [
        (p.overrides, p.record) for p in serial
    ]


def test_small_sec3d_search_process_matches_serial(all_profiles, params):
    problem = SitingProblem(
        profiles=all_profiles,
        params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
    )

    def solve(executor, workers):
        settings = SearchSettings(
            keep_locations=8,
            max_iterations=10,
            patience=6,
            num_chains=2,
            seed=1,
            parallel_chains=True,
            max_workers=workers,
            executor=executor,
        )
        return HeuristicSolver(problem, settings).solve()

    serial = solve("serial", 1)
    process = solve("process", 4)
    assert process.monthly_cost == serial.monthly_cost  # bit-identical objective
    assert process.history == serial.history
    assert sorted((dc.name, dc.size_class) for dc in process.plan.datacenters) == sorted(
        (dc.name, dc.size_class) for dc in serial.plan.datacenters
    )
