"""Unit tests for the executor layer: factory, serial executor, worker sizing."""

import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.parallel import ExecutorFactory, SerialExecutor, available_cpu_count
from repro.parallel import executors as executors_module


class TestSerialExecutor:
    def test_runs_inline_and_returns_result(self):
        with SerialExecutor() as pool:
            future = pool.submit(lambda a, b: a + b, 2, 3)  # reprolint: ok(PKL001) serial executor runs inline; nothing is pickled
        assert future.done()
        assert future.result() == 5

    def test_captures_exceptions_on_the_future(self):
        def boom():
            raise RuntimeError("kaput")

        with SerialExecutor() as pool:
            future = pool.submit(boom)  # reprolint: ok(PKL001) serial executor runs inline; nothing is pickled
        assert future.done()
        # timeout=0: the future is already resolved, a waiter can never hang.
        with pytest.raises(RuntimeError, match="kaput"):
            future.result(timeout=0)

    def test_map_preserves_order(self):
        with SerialExecutor() as pool:
            assert list(pool.map(abs, [-3, -1, -2])) == [3, 1, 2]


class TestExecutorFactory:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ExecutorFactory(kind="gpu")

    def test_rejects_nonpositive_worker_cap(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExecutorFactory(kind="thread", max_workers=0)

    def test_workers_bounded_by_cap_and_task_count(self):
        factory = ExecutorFactory(kind="thread", max_workers=4)
        assert factory.workers(upper=2) == 2
        assert factory.workers(upper=16) == 4

    def test_serial_kind_is_single_worker(self):
        factory = ExecutorFactory(kind="serial", max_workers=8)
        assert factory.workers(upper=16) == 1
        assert isinstance(factory.create(16), SerialExecutor)

    def test_thread_with_one_effective_worker_degenerates_to_serial(self):
        factory = ExecutorFactory(kind="thread", max_workers=1)
        assert isinstance(factory.create(8), SerialExecutor)
        assert isinstance(ExecutorFactory(kind="thread", max_workers=8).create(1), SerialExecutor)

    def test_process_kind_builds_a_real_pool(self):
        factory = ExecutorFactory(kind="process", max_workers=2)
        with factory.create(2) as pool:
            assert isinstance(pool, ProcessPoolExecutor)
            assert list(pool.map(abs, [-1, -2])) == [1, 2]

    def test_process_downgrades_to_serial_inside_a_worker(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_IN_PROCESS_WORKER", True)
        factory = ExecutorFactory(kind="process", max_workers=4)
        assert factory.effective_kind == "serial"
        assert isinstance(factory.create(4), SerialExecutor)
        # Thread factories are unaffected by the flag.
        assert ExecutorFactory(kind="thread").effective_kind == "thread"


class TestAvailableCpuCount:
    def test_prefers_scheduling_affinity(self, monkeypatch):
        # The affinity mask reflects cgroup cpusets; cpu_count() does not.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpu_count() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        def unsupported(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", unsupported, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert available_cpu_count() == 3

    def test_never_returns_less_than_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpu_count() == 1
