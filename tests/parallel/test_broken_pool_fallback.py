"""A dead process pool degrades a run to slower, never to failed.

A worker killed by a signal or the OOM killer breaks the whole
``ProcessPoolExecutor``: every outstanding future raises
``BrokenProcessPool`` even though the work itself is healthy.  The fan-out
sites must re-run the affected tasks inline in the parent — and running a
task inline must not leave the parent flagged as a pool worker, which would
silently downgrade every later process pool to serial.
"""

import os
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.parallel import (
    ExecutorFactory,
    in_process_worker,
    mark_process_worker,
    result_with_serial_fallback,
    run_task_inline,
)
from repro.scenarios import ExperimentRunner, ScenarioSpec

TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )


def _poison(value):
    """Kill the hosting pool worker; succeed when run inline in the parent."""
    if in_process_worker():
        os._exit(1)
    return ("inline", value)


class TestRunTaskInline:
    def test_worker_mark_does_not_leak_into_the_parent(self):
        assert not in_process_worker()
        result = run_task_inline(lambda: (mark_process_worker(), "ok")[1])  # reprolint: ok(PKL001) serial executor runs inline; nothing is pickled
        assert result == "ok"
        assert not in_process_worker()

    def test_exceptions_propagate_and_still_restore_the_mark(self):
        def boom():
            mark_process_worker()
            raise RuntimeError("inline task failed")

        with pytest.raises(RuntimeError, match="inline task failed"):
            run_task_inline(boom)  # reprolint: ok(PKL001) serial executor runs inline; nothing is pickled
        assert not in_process_worker()


@pytest.mark.multicore
class TestRealBrokenPool:
    def test_fallback_reruns_the_task_inline(self):
        factory = ExecutorFactory(kind="process", max_workers=2)
        with factory.create(2) as pool:
            future = pool.submit(_poison, 42)
            with pytest.raises(BrokenProcessPool):
                future.result()
            assert result_with_serial_fallback(future, _poison, 42) == ("inline", 42)
        assert not in_process_worker()

    def test_genuine_task_exceptions_propagate_unchanged(self):
        factory = ExecutorFactory(kind="process", max_workers=2)
        with factory.create(2) as pool:
            future = pool.submit(int, "not a number")
            with pytest.raises(ValueError):
                result_with_serial_fallback(future, int, "not a number")


class _DeadPool:
    """A pool whose every future raises BrokenProcessPool, like after an OOM kill."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, /, *args, **kwargs):
        future: Future = Future()
        future.set_running_or_notify_cancel()
        future.set_exception(BrokenProcessPool("worker lost"))
        return future


class _DeadFactory:
    """Stands in for the runner's process factory only — the inline fallback
    builds nested (serial) runners whose factories must stay real."""

    kind = "process"
    effective_kind = "process"

    def create(self, upper):
        return _DeadPool()


class TestRunnerFallback:
    def test_sweep_point_recovers_serially_in_the_parent(self):
        reference = ExperimentRunner(workers=1, executor="serial").run_point(tiny_spec())

        runner = ExperimentRunner(workers=2, executor="process")
        runner._factory = _DeadFactory()
        recovered = runner.run_point(tiny_spec())
        assert runner.process_fallbacks == 1
        assert recovered.record == reference.record
        assert not in_process_worker()
