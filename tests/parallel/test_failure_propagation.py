"""Failure propagation through the parallel fan-out layers.

A sweep point or annealing chain that raises must (a) surface the exception
to *every* waiter — no future may be left pending for a ``result()`` call to
deadlock on — and (b) leave the evaluation memos clean, so a later run of the
same work recomputes instead of replaying a stale error.  Both the thread and
the process executors are covered.
"""

import pytest

from repro.core import heuristic as heuristic_module
from repro.core import EnergySources, HeuristicSolver, SearchSettings, SitingProblem, StorageMode
from repro.parallel import ExecutorFactory, PricingChunkTask, run_pricing_chunk
from repro.scenarios import ExperimentRunner, ParameterSweep, ScenarioSpec

TINY_SEARCH = {
    "keep_locations": 4,
    "max_iterations": 3,
    "patience": 3,
    "num_chains": 1,
    "seed": 3,
    "max_datacenters": 3,
}


def tiny_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        num_locations=12,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search=dict(TINY_SEARCH),
    )
    return spec.with_updates(**overrides) if overrides else spec


class TestRunnerThreadFailures:
    def test_all_waiters_raise_and_memo_stays_clean(self, monkeypatch):
        runner = ExperimentRunner(workers=3, executor="thread")
        calls = {"n": 0}

        def explode(key, spec):
            calls["n"] += 1
            raise RuntimeError("worker detonated")

        monkeypatch.setattr(runner, "_evaluate", explode)
        # Three sweep points that canonicalise onto ONE memo future (all
        # 0 %-green source variants are the same brown scenario): one
        # computation, three waiters.
        sweep = ParameterSweep(
            base=tiny_spec(min_green_fraction=0.0),
            axes={"sources": ("wind", "solar", "solar+wind")},
        )
        with pytest.raises(RuntimeError, match="worker detonated"):
            runner.run(sweep)
        assert calls["n"] == 1  # one future, every waiter saw its exception
        assert runner._memo == {}  # the failure was not memoized

        monkeypatch.undo()
        results = runner.run(sweep)  # same runner recomputes cleanly
        assert len(results) == 3
        assert all(point.record["feasible"] for point in results)


class TestRunnerProcessFailures:
    def test_worker_error_propagates_and_is_not_memoized(self):
        runner = ExperimentRunner(workers=2, executor="process")
        # An emulation site missing from the catalogue raises KeyError inside
        # the worker process, after the task crossed the pickling boundary.
        bad = ScenarioSpec(
            workflow="emulate",
            num_locations=12,
            catalog_seed=3,
            hours_per_epoch=1,
            emulation={"sites": ("Nowhere, Atlantis",), "duration_hours": 2, "num_vms": 2},
        )
        with pytest.raises(KeyError):
            runner.run_point(bad)
        assert runner._memo == {}
        # The same runner recomputes (same error again — not a stale future,
        # not a deadlock) and still serves healthy points afterwards.
        with pytest.raises(KeyError):
            runner.run_point(bad)
        good = runner.run_point(tiny_spec())
        assert good.record["feasible"]

    def test_failure_of_one_point_does_not_block_others(self):
        runner = ExperimentRunner(workers=2, executor="process")
        bad = ScenarioSpec(
            workflow="emulate",
            num_locations=12,
            catalog_seed=3,
            hours_per_epoch=1,
            emulation={"sites": ("Nowhere, Atlantis",), "duration_hours": 2, "num_vms": 2},
        )
        good = tiny_spec()
        with pytest.raises(KeyError):
            runner.run(ParameterSweep(base=bad))
        # Every memo future was resolved (exception or result) before run()
        # raised: a fresh run of the good point must not hang on leftovers.
        assert all(future.done() for future in runner._memo.values())
        assert runner.run_point(good).record["feasible"]


class TestChainFailures:
    @pytest.fixture()
    def problem(self, all_profiles, params):
        return SitingProblem(
            profiles=all_profiles,
            params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
        )

    def test_thread_chain_failure_resolves_every_memo_future(self, monkeypatch, problem):
        settings = SearchSettings(
            keep_locations=6,
            max_iterations=6,
            patience=4,
            num_chains=3,
            seed=11,
            parallel_chains=True,
            max_workers=4,
            executor="thread",
        )
        solver = HeuristicSolver(problem, settings)
        original = heuristic_module.solve_provisioning
        multi_site_calls = {"n": 0}

        def flaky(problem_arg, siting, *args, **kwargs):
            # Filter pricing solves single-site LPs; the first multi-site LP
            # is the shared initial evaluation.  Everything after that is a
            # chain move — those are the ones that fall over.
            if len(siting) >= 2:
                multi_site_calls["n"] += 1
                if multi_site_calls["n"] > 1:
                    raise RuntimeError("LP backend fell over")
            return original(problem_arg, siting, *args, **kwargs)

        monkeypatch.setattr(heuristic_module, "solve_provisioning", flaky)
        with pytest.raises(RuntimeError, match="LP backend fell over"):
            solver.solve()
        # The owner set the exception on its memo future before re-raising:
        # concurrent chains waiting on the same siting saw it too, and no
        # future is left pending to deadlock a later result() call.
        assert solver._cache
        assert all(future.done() for future in solver._cache.values())

    def test_process_worker_failure_propagates_to_parent(self, problem):
        # A pricing task referencing a location outside its shipped problem
        # raises KeyError inside the worker; the parent must see it on the
        # pool future, and the pool must stay usable for the next task.
        from repro.lpsolver import SolverOptions

        factory = ExecutorFactory(kind="process", max_workers=2)
        options = SolverOptions()
        names = [profile.name for profile in problem.profiles[:2]]
        good = PricingChunkTask(
            problem=problem.restricted_to(names),
            sitings=((names[0], "large"),),
            options=options,
        )
        bad = PricingChunkTask(
            problem=problem.restricted_to(names),
            sitings=(("Nowhere, Atlantis", "large"),),
            options=options,
        )
        with factory.create(2) as pool:
            bad_future = pool.submit(run_pricing_chunk, bad)
            good_future = pool.submit(run_pricing_chunk, good)
            with pytest.raises(KeyError):
                bad_future.result()
            rows = good_future.result()
        assert rows[0][0] == names[0]
