"""Process-executor determinism: bit-identical to serial for any worker count.

The guarantee under test is the one the ``executor`` knob documents: the
executor kind ("thread" / "process" / "serial") and the worker count never
change results — costs, sitings, histories and pricing scores are bit for bit
those of the serial path for a fixed seed.  Only the ``parallel_chains``
trajectory switch changes outcomes.
"""

import pytest

from repro.core import (
    EnergySources,
    HeuristicSolver,
    SearchSettings,
    SingleSiteAnalyzer,
    SitingProblem,
    StorageMode,
)


@pytest.fixture(scope="module")
def search_problem(all_profiles, params):
    return SitingProblem(
        profiles=all_profiles,
        params=params.with_updates(total_capacity_kw=50_000.0, min_green_fraction=0.5),
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
    )


def solve(problem, executor, workers, parallel=True, num_chains=3):
    settings = SearchSettings(
        keep_locations=6,
        max_iterations=8,
        patience=5,
        num_chains=num_chains,
        seed=11,
        max_datacenters=4,
        parallel_chains=parallel,
        max_workers=workers,
        executor=executor,
    )
    return HeuristicSolver(problem, settings).solve()


def comparable(solution):
    return (
        solution.monthly_cost,
        solution.history,
        solution.filtered_locations,
        sorted(dc.name for dc in solution.plan.datacenters),
        sorted((dc.name, dc.size_class) for dc in solution.plan.datacenters),
    )


class TestProcessChains:
    def test_bit_identical_to_serial(self, search_problem):
        serial = solve(search_problem, "serial", 1)
        process = solve(search_problem, "process", 2)
        thread = solve(search_problem, "thread", 4)
        assert comparable(process) == comparable(serial)
        assert comparable(thread) == comparable(serial)
        # The memo diagnostics match too: the parent replays the chains'
        # request logs against shared-memo accounting, so records built from
        # evaluations/cache_hits never depend on the executor kind.
        assert process.evaluations == serial.evaluations == thread.evaluations
        assert process.cache_hits == serial.cache_hits == thread.cache_hits

    def test_independent_of_worker_count(self, search_problem):
        two = solve(search_problem, "process", 2)
        four = solve(search_problem, "process", 4)
        assert comparable(two) == comparable(four)
        assert two.evaluations == four.evaluations
        assert two.cache_hits == four.cache_hits

    def test_sequential_trajectory_with_process_filter(self, search_problem):
        # Without parallel_chains the chains stay sequential (a different,
        # equally deterministic trajectory); "process" then parallelises only
        # the filter pricing, which must not move a single bit.
        reference = comparable(solve(search_problem, "serial", 1, parallel=None))
        assert comparable(solve(search_problem, "process", 4, parallel=None)) == reference


class TestProcessFilter:
    def test_filter_ranking_identical_across_executors(self, search_problem):
        def filtered(executor):
            settings = SearchSettings(keep_locations=8, seed=11, executor=executor, max_workers=4)
            return HeuristicSolver(search_problem, settings).filter_locations()

        assert filtered("process") == filtered("serial") == filtered("thread")


class TestProcessCostDistribution:
    def test_costs_identical_and_slim(self, all_profiles):
        analyzer = SingleSiteAnalyzer()
        thread = analyzer.cost_distribution(all_profiles, workers=3, executor="thread")
        process = analyzer.cost_distribution(all_profiles, workers=3, executor="process")
        assert [c.monthly_cost for c in process] == [c.monthly_cost for c in thread]
        assert [c.feasible for c in process] == [c.feasible for c in thread]
        assert [c.name for c in process] == [c.name for c in thread]
        # Process-priced costs are slim: the LP result lives and dies in the
        # worker, only the numbers cross back.
        assert all(cost.result is None for cost in process)
        assert all(cost.plan is None for cost in process)
