"""Shared fixtures for the test-suite.

The fixtures are deliberately small (a couple of dozen candidate locations, a
coarse epoch grid, short heuristic searches) so the whole suite runs in a few
minutes; the benchmarks under ``benchmarks/`` use larger configurations.
Session scope is used for everything expensive and immutable.
"""

from __future__ import annotations

import pytest

from repro.core import (
    EnergySources,
    FrameworkParameters,
    PlacementTool,
    SearchSettings,
    SitingProblem,
    StorageMode,
)
from repro.energy import EpochGrid, ProfileBuilder
from repro.lpsolver import SolverOptions
from repro.weather import build_world_catalog


@pytest.fixture(scope="session")
def small_catalog():
    """A 24-location world catalogue (anchors plus synthetic locations)."""
    return build_world_catalog(num_locations=24, seed=7)


@pytest.fixture(scope="session")
def epoch_grid():
    """Four seasonal representative days split into 3-hour epochs (32 epochs)."""
    return EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)


@pytest.fixture(scope="session")
def hourly_grid():
    """One representative day per season at hourly resolution (96 epochs)."""
    return EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=1)


@pytest.fixture(scope="session")
def profile_builder(small_catalog):
    return ProfileBuilder(small_catalog)


@pytest.fixture(scope="session")
def all_profiles(profile_builder, epoch_grid):
    return profile_builder.build_all(epoch_grid)


@pytest.fixture(scope="session")
def anchor_profiles(profile_builder, epoch_grid, small_catalog):
    """Profiles of the named anchor locations, keyed by location name."""
    return {
        location.name: profile_builder.build(location, epoch_grid)
        for location in small_catalog.locations
        if location.is_anchor
    }


@pytest.fixture(scope="session")
def params():
    return FrameworkParameters()


@pytest.fixture(scope="session")
def fast_settings():
    """Heuristic settings small enough for unit tests."""
    return SearchSettings(
        keep_locations=6, max_iterations=10, patience=6, num_chains=1, seed=1, max_datacenters=4
    )


@pytest.fixture(scope="session")
def small_tool(small_catalog, epoch_grid):
    return PlacementTool(catalog=small_catalog, epoch_grid=epoch_grid)


@pytest.fixture(scope="session")
def two_site_problem(anchor_profiles, params):
    """A two-candidate problem used by the provisioning/formulation tests."""
    profiles = [
        anchor_profiles["Mount Washington, NH, USA"],
        anchor_profiles["Grissom, IN, USA"],
    ]
    problem_params = params.with_updates(
        total_capacity_kw=50_000.0, min_green_fraction=0.5
    )
    return SitingProblem(
        profiles=profiles,
        params=problem_params,
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
    )


@pytest.fixture(scope="session")
def case_study_solution(small_tool, fast_settings):
    """A solved 50 MW / 50 % green network used by several test modules."""
    return small_tool.plan_network(
        total_capacity_kw=50_000.0,
        min_green_fraction=0.5,
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
        settings=fast_settings,
    )


@pytest.fixture(scope="session")
def case_study_plan(case_study_solution):
    plan = case_study_solution.plan
    assert plan is not None, "the shared case-study scenario must be feasible"
    return plan


@pytest.fixture(scope="session")
def solver_options():
    return SolverOptions()
