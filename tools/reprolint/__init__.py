"""reprolint — repo-specific static analysis for reproducibility contracts.

The repository's hardest guarantees are *behavioural*: bit-identical results
across serial/thread/process executors, content-hash-keyed artifact caches
that stay valid across processes, warm-started LP splices that reproduce cold
solves.  Differential tests catch violations after the fact; ``reprolint``
encodes the source-level contracts those guarantees rest on as checkable AST
rules, so a violation fails CI before it ships:

========  =====================================================================
Rule      Contract
========  =====================================================================
DET001    No global-state RNG (``random.random()``, ``np.random.rand()``,
          unseeded ``default_rng()``): all randomness must flow from an
          explicit seed (counter-based / crc32-derived), or results differ
          across processes and runs.
DET002    No builtin ``hash()`` outside ``__hash__``: ``PYTHONHASHSEED``
          randomises it per process, so it must never feed cache keys,
          content hashes or anything order-bearing.  Use ``zlib.crc32`` /
          ``hashlib`` over a canonical encoding.
DET003    No wall-clock reads (``time.time``, ``datetime.now``) in library
          code: pure compute and hashing paths must be time-independent
          (``time.perf_counter``/``monotonic`` stay legal for duration
          measurement).
DET004    No RNG seed read from module state: every seeded constructor
          (``default_rng``/``Random``/``RandomState``/``SeedSequence``)
          must derive its seed from an explicit argument, parameter or
          local, so callers — not import order — decide the stream.
PKL001    No lambdas or locally-defined functions submitted to executors or
          stored in work descriptors: they do not pickle, so the code path
          silently stops working on the process executor.
FLT001    No exact ``==``/``!=`` float comparisons in solver-tolerance code
          (``lpsolver``/``core``/``operator``): LP optima are only defined to
          solver tolerance; compare with an explicit epsilon.
SET001    No ``set`` iteration flowing into ordered outputs (lists, arrays,
          joins, dict comprehensions): string-hash randomisation makes set
          order differ across processes.  Sort first.
========  =====================================================================

Findings are suppressed line-by-line with ``# reprolint: ok(<RULE>)`` (comma
separate several rules; append a justification after the closing paren).
Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]``.

Run as ``python -m tools.reprolint src tests``.
"""

from tools.reprolint.config import Config, load_config
from tools.reprolint.engine import Finding, lint_file, lint_paths, main
from tools.reprolint.rules import RULES

__all__ = [
    "Config",
    "Finding",
    "RULES",
    "lint_file",
    "lint_paths",
    "load_config",
    "main",
]
