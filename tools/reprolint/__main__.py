"""``python -m tools.reprolint src tests`` — run the contract linter."""

import sys

from tools.reprolint.engine import main

if __name__ == "__main__":
    sys.exit(main())
