"""File discovery, pragma filtering and reporting for reprolint.

Suppression is line-scoped: a finding on line *n* is suppressed when line *n*
carries ``# reprolint: ok(CODE)`` (several codes comma-separated; free-text
justification after the closing paren is encouraged and ignored by the
parser).  ``# reprolint: skip-file`` in the first ten lines skips the module.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, TextIO, Tuple

from tools.reprolint.config import Config, load_config
from tools.reprolint.rules import RULE_CODES, check_module, rule_summaries

_PRAGMA = re.compile(r"#\s*reprolint:\s*ok\(\s*([A-Za-z0-9_,\s]+?)\s*\)")
_SKIP_FILE = re.compile(r"#\s*reprolint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation, located and pragma-resolved."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}{tag}"


def _pragma_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes OK'd on that line."""
    pragmas: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match:
            codes = {code.strip().upper() for code in match.group(1).split(",")}
            pragmas[number] = {code for code in codes if code}
    return pragmas


def _unknown_pragma_codes(pragmas: Dict[int, Set[str]]) -> List[Tuple[int, str]]:
    known = set(RULE_CODES)
    return sorted(
        (line, code)
        for line, codes in pragmas.items()
        for code in codes
        if code not in known
    )


def lint_file(
    path: str, config: Config, *, relpath: Optional[str] = None
) -> List[Finding]:
    """Lint one file; raises SyntaxError for unparseable sources."""
    rel = relpath if relpath is not None else os.path.relpath(path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    head = "\n".join(source.splitlines()[:10])
    if _SKIP_FILE.search(head):
        return []
    tree = ast.parse(source, filename=path)
    pragmas = _pragma_lines(source)
    findings: List[Finding] = []
    for line, code in _unknown_pragma_codes(pragmas):
        findings.append(
            Finding(rel, line, 0, "RLERR", f"pragma names unknown rule {code!r}", False)
        )
    for raw in check_module(tree, config, float_rule_active=config.float_rule_applies(rel)):
        suppressed = raw.code in pragmas.get(raw.line, set())
        findings.append(Finding(rel, raw.line, raw.col, raw.code, raw.message, suppressed))
    return findings


def discover(paths: Sequence[str], config: Config) -> List[Tuple[str, str]]:
    """Expand path arguments to ``(abspath, relpath)`` pairs, sorted, deduped."""
    seen: Set[str] = set()
    files: List[Tuple[str, str]] = []

    def add(abspath: str) -> None:
        rel = os.path.relpath(abspath).replace(os.sep, "/")
        if abspath in seen or config.is_excluded(rel):
            return
        seen.add(abspath)
        files.append((abspath, rel))

    for path in paths:
        abspath = os.path.abspath(path)
        if os.path.isfile(abspath):
            add(abspath)
        elif os.path.isdir(abspath):
            for root, dirs, names in os.walk(abspath):
                dirs.sort()
                dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
                for name in sorted(names):
                    if name.endswith(".py"):
                        add(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return sorted(files, key=lambda pair: pair[1])


def lint_paths(paths: Sequence[str], config: Config) -> List[Finding]:
    """Lint every python file under ``paths`` (respecting excludes)."""
    findings: List[Finding] = []
    for abspath, rel in discover(paths, config):
        findings.extend(lint_file(abspath, config, relpath=rel))
    return findings


def main(argv: Optional[Sequence[str]] = None, stream: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Repo-specific static analysis for reproducibility contracts.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by ok(...) pragmas",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule set and exit")
    parser.add_argument(
        "--config", metavar="PYPROJECT", help="explicit pyproject.toml (default: nearest)"
    )
    parser.add_argument(
        "--no-config", action="store_true", help="ignore pyproject.toml, use built-in defaults"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, summary in rule_summaries():
            print(f"{code}  {summary}", file=stream)
        return 0

    try:
        config = Config() if options.no_config else load_config(options.config)
    except (OSError, ValueError) as error:
        print(f"reprolint: configuration error: {error}", file=sys.stderr)
        return 2
    if options.select:
        codes = tuple(code.strip().upper() for code in options.select.split(",") if code.strip())
        unknown = sorted(set(codes) - set(RULE_CODES))
        if unknown:
            print(f"reprolint: unknown rule codes: {', '.join(unknown)}", file=sys.stderr)
            return 2
        config = Config(
            select=codes,
            exclude=config.exclude,
            descriptor_classes=config.descriptor_classes,
            float_paths=config.float_paths,
            paths=config.paths,
        )

    paths = list(options.paths) or list(config.paths)
    if not paths:
        print("reprolint: no paths given (CLI or [tool.reprolint] paths)", file=sys.stderr)
        return 2

    try:
        files = discover(paths, config)
        findings = []
        for abspath, rel in files:
            findings.extend(lint_file(abspath, config, relpath=rel))
    except FileNotFoundError as error:
        print(f"reprolint: no such path: {error}", file=sys.stderr)
        return 2
    except SyntaxError as error:
        print(f"reprolint: cannot parse {error.filename}:{error.lineno}: {error.msg}", file=sys.stderr)
        return 2

    unsuppressed = [finding for finding in findings if not finding.suppressed]
    suppressed = [finding for finding in findings if finding.suppressed]
    for finding in unsuppressed:
        print(finding.format(), file=stream)
    if options.show_suppressed:
        for finding in suppressed:
            print(finding.format(), file=stream)
    checked = len(files)
    print(
        f"reprolint: {checked} files checked, {len(unsuppressed)} findings "
        f"({len(suppressed)} suppressed)",
        file=stream,
    )
    return 1 if unsuppressed else 0
