"""Configuration for reprolint: ``[tool.reprolint]`` in ``pyproject.toml``.

Everything has a default tuned to this repository, so the linter works with
no configuration at all; the pyproject block exists to pin the defaults
explicitly and to exclude the deliberate-violation lint fixtures from
repo-wide runs.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Tuple

#: Work-descriptor classes whose constructor arguments (and class bodies)
#: must stay picklable: they cross the process-pool boundary.
DEFAULT_DESCRIPTOR_CLASSES: Tuple[str, ...] = (
    "PricingChunkTask",
    "BatchPricingTask",
    "ChainTask",
    "SweepPointTask",
)

#: Path prefixes where exact float equality is treated as a tolerance bug
#: (solver-adjacent code).  Matched against posix-style relative paths.
DEFAULT_FLOAT_PATHS: Tuple[str, ...] = (
    "src/repro/lpsolver",
    "src/repro/core",
    "src/repro/operator",
)

#: Paths never linted (the self-test fixtures contain violations on purpose).
DEFAULT_EXCLUDE: Tuple[str, ...] = ("tests/tools/fixtures",)


@dataclass(frozen=True)
class Config:
    """Resolved reprolint configuration."""

    select: Tuple[str, ...] = ()  # empty = all rules
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    descriptor_classes: Tuple[str, ...] = DEFAULT_DESCRIPTOR_CLASSES
    float_paths: Tuple[str, ...] = DEFAULT_FLOAT_PATHS
    paths: Tuple[str, ...] = ()  # default lint targets when CLI gives none

    def rule_enabled(self, code: str) -> bool:
        return not self.select or code in self.select

    def is_excluded(self, relpath: str) -> bool:
        posix = relpath.replace(os.sep, "/")
        return any(
            posix == prefix or posix.startswith(prefix.rstrip("/") + "/")
            for prefix in self.exclude
        )

    def float_rule_applies(self, relpath: str) -> bool:
        posix = relpath.replace(os.sep, "/")
        return any(
            posix == prefix or posix.startswith(prefix.rstrip("/") + "/")
            for prefix in self.float_paths
        )


def _str_tuple(table: Mapping[str, Any], key: str, default: Sequence[str]) -> Tuple[str, ...]:
    value = table.get(key)
    if value is None:
        return tuple(default)
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise ValueError(f"[tool.reprolint] {key} must be a list of strings")
    return tuple(value)


def config_from_table(table: Mapping[str, Any]) -> Config:
    """Build a :class:`Config` from a ``[tool.reprolint]`` mapping."""
    known = {"select", "exclude", "descriptor-classes", "float-paths", "paths"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise ValueError(f"unknown [tool.reprolint] keys: {', '.join(unknown)}")
    return Config(
        select=_str_tuple(table, "select", ()),
        exclude=_str_tuple(table, "exclude", DEFAULT_EXCLUDE),
        descriptor_classes=_str_tuple(table, "descriptor-classes", DEFAULT_DESCRIPTOR_CLASSES),
        float_paths=_str_tuple(table, "float-paths", DEFAULT_FLOAT_PATHS),
        paths=_str_tuple(table, "paths", ()),
    )


def find_pyproject(start: Optional[str] = None) -> Optional[str]:
    """The nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    directory = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(pyproject_path: Optional[str] = None) -> Config:
    """Load configuration from ``pyproject.toml`` (defaults when absent)."""
    path = pyproject_path or find_pyproject()
    if path is None:
        return Config()
    with open(path, "rb") as handle:
        payload = tomllib.load(handle)
    table = payload.get("tool", {}).get("reprolint", {})
    return config_from_table(table)
