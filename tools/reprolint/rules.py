"""AST rules encoding the repository's reproducibility contracts.

One :class:`ContractVisitor` walks a module once and emits findings for every
enabled rule.  The rules are deliberately *heuristic* — they track import
aliases and lexical scope, not types — so each carries a line-level escape
hatch (``# reprolint: ok(<RULE>) justification``) for the provably-safe cases.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.config import Config


@dataclass(frozen=True)
class Rule:
    code: str
    summary: str


RULES: Tuple[Rule, ...] = (
    Rule("DET001", "global-state RNG call; use an explicitly seeded generator"),
    Rule("DET002", "builtin hash() outside __hash__; use zlib.crc32/hashlib"),
    Rule("DET003", "wall-clock read in library code; results must be time-independent"),
    Rule("DET004", "RNG seed reads module state; derive seeds from an explicit argument"),
    Rule("PKL001", "unpicklable callable reaches the executor boundary"),
    Rule("FLT001", "exact float ==/!= in solver-tolerance code; compare with epsilon"),
    Rule("SET001", "set iteration order flows into an ordered output; sort first"),
)

RULE_CODES: Tuple[str, ...] = tuple(rule.code for rule in RULES)


@dataclass(frozen=True)
class RawFinding:
    """A rule violation before pragma filtering (engine adds the path)."""

    code: str
    line: int
    col: int
    message: str


# -- DET001: global-state randomness -------------------------------------------

#: Module-level functions of ``random`` that touch the hidden global Random().
_RANDOM_GLOBAL_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "getrandbits", "getstate", "setstate",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "vonmisesvariate", "gammavariate", "betavariate", "paretovariate",
        "weibullvariate", "triangular", "binomialvariate", "randbytes",
    }
)

#: ``numpy.random`` module functions backed by the hidden global RandomState.
_NP_RANDOM_GLOBAL_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "seed", "choice", "shuffle", "permutation", "bytes",
        "get_state", "set_state", "normal", "uniform", "standard_normal",
        "poisson", "beta", "binomial", "chisquare", "dirichlet",
        "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "logseries", "multinomial",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "noncentral_f", "pareto", "power", "rayleigh", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_t", "triangular",
        "vonmises", "wald", "weibull", "zipf", "random_integers",
    }
)

#: Seeded-generator constructors that are *only* deterministic with a seed.
_SEEDED_CONSTRUCTORS = frozenset({"Random", "default_rng", "RandomState", "SeedSequence"})

# -- DET004: seed plumbing -------------------------------------------------------

_BUILTIN_NAMES = frozenset(dir(builtins))


def _bound_names(node: ast.AST) -> Set[str]:
    """Every name bound anywhere inside ``node`` (Python scoping is
    whole-function, so a later assignment still makes the name local).

    Includes bindings from nested scopes — an over-approximation that only
    ever suppresses findings, never invents them.  Names declared ``global``
    or ``nonlocal`` are subtracted: they resolve to an *enclosing* scope,
    whose own binding set (if any) is separately on the stack.
    """
    bound: Set[str] = set()
    declared: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            bound.add(sub.id)
        elif isinstance(sub, ast.arg):
            bound.add(sub.arg)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            declared.update(sub.names)
    return bound - declared

# -- DET003: wall-clock reads ---------------------------------------------------

_TIME_WALLCLOCK_FUNCS = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime", "strftime"}
)
_DATETIME_CLASS_WALLCLOCK = frozenset({"now", "utcnow", "today"})

# -- SET001: order-sensitive consumers of sets ---------------------------------

#: Callables for which argument order is observable in the output.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "next", "reversed"})
#: numpy constructors that freeze iteration order into an array.
_NP_ORDERED_CONSUMERS = frozenset({"array", "asarray", "fromiter", "stack", "concatenate"})


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class ContractVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting findings for all enabled rules."""

    def __init__(self, config: Config, *, float_rule_active: bool) -> None:
        self.config = config
        self.float_rule_active = float_rule_active
        self.findings: List[RawFinding] = []

        # Import alias tracking (module-level and function-level lumped
        # together: shadowing across scopes is rare enough not to matter).
        self._random_aliases: Set[str] = set()
        self._numpy_aliases: Set[str] = set()
        self._numpy_random_aliases: Set[str] = set()
        self._time_aliases: Set[str] = set()
        self._datetime_module_aliases: Set[str] = set()
        self._datetime_class_aliases: Set[str] = set()
        # Name -> (module, func) for ``from random import randint`` style.
        self._from_imports: Dict[str, Tuple[str, str]] = {}

        # Lexical scope: stack of enclosing function names, and per-scope
        # names of locally-defined functions (for PKL001).
        self._function_stack: List[str] = []
        self._local_defs: List[Set[str]] = []
        # DET004: stack of bound-name sets, one per enclosing function /
        # lambda / comprehension scope, plus every imported top-level name.
        self._bindings: List[Set[str]] = []
        self._import_names: Set[str] = set()

    # -- helpers ----------------------------------------------------------------

    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        if self.config.rule_enabled(code):
            self.findings.append(
                RawFinding(code, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)
            )

    def _in_dunder_hash(self) -> bool:
        return "__hash__" in self._function_stack

    def _is_local_def(self, name: str) -> bool:
        return any(name in scope for scope in self._local_defs)

    # -- imports ----------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self._import_names.add(bound)
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                # ``import numpy.random as npr`` binds the submodule; plain
                # ``import numpy.random`` binds ``numpy``.
                if alias.name == "numpy.random" and alias.asname:
                    self._numpy_random_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_module_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            self._import_names.add(bound)
            if module == "numpy" and alias.name == "random":
                self._numpy_random_aliases.add(bound)
            elif module in ("random", "numpy.random", "time", "datetime"):
                self._from_imports[bound] = (module, alias.name)
                if module == "datetime" and alias.name == "datetime":
                    self._datetime_class_aliases.add(bound)
        self.generic_visit(node)

    # -- scope tracking ----------------------------------------------------------

    def _visit_function(self, node) -> None:
        if self._function_stack and self._local_defs:
            self._local_defs[-1].add(node.name)
        self._function_stack.append(node.name)
        self._local_defs.append(set())
        self._bindings.append(_bound_names(node))
        self.generic_visit(node)
        self._function_stack.pop()
        self._local_defs.pop()
        self._bindings.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._bindings.append(_bound_names(node))
        self.generic_visit(node)
        self._bindings.pop()

    def _is_bound(self, name: str) -> bool:
        return any(name in scope for scope in self._bindings)

    # -- calls: DET001 / DET002 / DET003 / PKL001 / SET001 ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_seed_plumbing(node)
        self._check_hash_call(node)
        self._check_wallclock_call(node)
        self._check_executor_call(node)
        self._check_descriptor_call(node)
        self._check_ordered_consumer_call(node)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        # from random import randint; randint(...)
        if isinstance(func, ast.Name):
            origin = self._from_imports.get(func.id)
            if origin is not None:
                module, name = origin
                if module == "random" and name in _RANDOM_GLOBAL_FUNCS:
                    self._emit("DET001", node, f"random.{name}() uses the hidden global RNG")
                elif module == "numpy.random" and name in _NP_RANDOM_GLOBAL_FUNCS:
                    self._emit("DET001", node, f"np.random.{name}() uses the hidden global RNG")
                elif name in _SEEDED_CONSTRUCTORS and not node.args and not node.keywords:
                    self._emit("DET001", node, f"{name}() without a seed is nondeterministic")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # random.<func>() / random.Random()
        if isinstance(base, ast.Name) and base.id in self._random_aliases:
            if func.attr in _RANDOM_GLOBAL_FUNCS:
                self._emit("DET001", node, f"random.{func.attr}() uses the hidden global RNG")
            elif func.attr == "Random" and not node.args and not node.keywords:
                self._emit("DET001", node, "random.Random() without a seed is nondeterministic")
            return
        # npr.<func>() where npr aliases numpy.random
        if isinstance(base, ast.Name) and base.id in self._numpy_random_aliases:
            self._check_np_random_attr(node, func.attr)
            return
        # np.random.<func>()
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in self._numpy_aliases
        ):
            self._check_np_random_attr(node, func.attr)

    def _check_np_random_attr(self, node: ast.Call, attr: str) -> None:
        if attr in _NP_RANDOM_GLOBAL_FUNCS:
            self._emit("DET001", node, f"np.random.{attr}() uses the hidden global RNG")
        elif attr in ("default_rng", "RandomState") and not node.args and not node.keywords:
            self._emit("DET001", node, f"np.random.{attr}() without a seed is nondeterministic")

    # -- DET004 ------------------------------------------------------------------

    def _seeded_constructor_name(self, node: ast.Call) -> Optional[str]:
        """The ``_SEEDED_CONSTRUCTORS`` member this call invokes, if any."""
        func = node.func
        if isinstance(func, ast.Name):
            origin = self._from_imports.get(func.id)
            if origin is not None and origin[1] in _SEEDED_CONSTRUCTORS:
                return origin[1]
            return None
        if not isinstance(func, ast.Attribute) or func.attr not in _SEEDED_CONSTRUCTORS:
            return None
        base = func.value
        if isinstance(base, ast.Name) and (
            base.id in self._random_aliases or base.id in self._numpy_random_aliases
        ):
            return func.attr
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in self._numpy_aliases
        ):
            return func.attr
        return None

    def _check_seed_plumbing(self, node: ast.Call) -> None:
        """DET004: seeded-constructor seeds must derive from explicit arguments."""
        name = self._seeded_constructor_name(node)
        if name is None:
            return
        seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in seed_exprs:  # unseeded calls are DET001's finding
            offenders = self._module_state_names(expr)
            if offenders:
                self._emit(
                    "DET004",
                    node,
                    f"{name}() seed reads module state {offenders[0]!r}; "
                    "derive seeds from an explicit argument",
                )
                return

    def _module_state_names(self, expr: ast.expr) -> List[str]:
        """Free names in ``expr`` that can only resolve to module globals.

        A loaded name is module state unless it is bound in an enclosing
        function/lambda/comprehension scope, imported, a builtin, or part of
        a callee (``zlib.crc32(...)`` names the *function*, not the seed).
        """
        callee_nodes: Set[int] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                callee_nodes.update(id(part) for part in ast.walk(sub.func))
        names: List[str] = []
        for sub in ast.walk(expr):
            if id(sub) in callee_nodes or not isinstance(sub, ast.Name):
                continue
            if not isinstance(sub.ctx, ast.Load):
                continue
            name = sub.id
            if (
                name in _BUILTIN_NAMES
                or name in self._import_names
                or self._is_bound(name)
            ):
                continue
            if name not in names:
                names.append(name)
        return names

    def _check_hash_call(self, node: ast.Call) -> None:
        if _call_name(node) == "hash" and not self._in_dunder_hash():
            self._emit(
                "DET002",
                node,
                "builtin hash() is randomised per process (PYTHONHASHSEED); "
                "use zlib.crc32/hashlib over a canonical encoding",
            )

    def _check_wallclock_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = self._from_imports.get(func.id)
            if origin is not None:
                module, name = origin
                if module == "time" and name in _TIME_WALLCLOCK_FUNCS and not node.args:
                    self._emit("DET003", node, f"time.{name}() reads the wall clock")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # time.time() and friends (argument-less reads only: strftime(fmt, t)
        # formats an explicit instant and is pure).
        if (
            isinstance(base, ast.Name)
            and base.id in self._time_aliases
            and func.attr in _TIME_WALLCLOCK_FUNCS
            and not node.args
        ):
            self._emit("DET003", node, f"time.{func.attr}() reads the wall clock")
            return
        if func.attr not in _DATETIME_CLASS_WALLCLOCK:
            return
        # datetime.now() via the imported class, datetime.datetime.now(),
        # datetime.date.today() via the module.
        if isinstance(base, ast.Name) and base.id in self._datetime_class_aliases:
            self._emit("DET003", node, f"datetime.{func.attr}() reads the wall clock")
        elif (
            isinstance(base, ast.Attribute)
            and base.attr in ("datetime", "date")
            and isinstance(base.value, ast.Name)
            and base.value.id in self._datetime_module_aliases
        ):
            self._emit("DET003", node, f"{base.attr}.{func.attr}() reads the wall clock")
        else:
            origin = self._from_imports.get(base.id) if isinstance(base, ast.Name) else None
            if origin == ("datetime", "date") and func.attr == "today":
                self._emit("DET003", node, "date.today() reads the wall clock")

    def _check_executor_call(self, node: ast.Call) -> None:
        """PKL001: lambdas / local defs handed to ``submit``/``map``."""
        func = node.func
        is_boundary = (
            isinstance(func, ast.Attribute) and func.attr in ("submit", "map")
        ) or (isinstance(func, ast.Name) and func.id == "run_task_inline")
        if not is_boundary:
            return
        for arg in node.args:
            self._flag_unpicklable(arg, context="submitted to an executor")

    def _check_descriptor_call(self, node: ast.Call) -> None:
        """PKL001: lambdas / local defs stored in work descriptors."""
        name = _call_name(node)
        if name not in self.config.descriptor_classes:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._flag_unpicklable(arg, context=f"stored in work descriptor {name}")

    def _flag_unpicklable(self, arg: ast.expr, *, context: str) -> None:
        if isinstance(arg, ast.Lambda):
            self._emit("PKL001", arg, f"lambda {context}: lambdas do not pickle")
        elif isinstance(arg, ast.Name) and self._is_local_def(arg.id):
            self._emit(
                "PKL001",
                arg,
                f"locally-defined function {arg.id!r} {context}: "
                "nested functions do not pickle",
            )

    # -- FLT001 ------------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.float_rule_active and self.config.rule_enabled("FLT001"):
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    self._is_float_literal(left) or self._is_float_literal(right)
                ):
                    self._emit(
                        "FLT001",
                        node,
                        "exact float equality; LP results are only defined to "
                        "solver tolerance — compare with an epsilon",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return True
        if isinstance(node, ast.Call) and _call_name(node) == "float":
            return True
        return False

    # -- SET001 ------------------------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and _call_name(node) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _flag_set_iteration(self, iterable: ast.expr, context: str) -> None:
        if self._is_set_expr(iterable):
            self._emit(
                "SET001",
                iterable,
                f"set iteration order is process-dependent but {context}; "
                "wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, "the loop body sees it in order")
        self.generic_visit(node)

    @staticmethod
    def _comp_bindings(node) -> Set[str]:
        bound: Set[str] = set()
        for comp in node.generators:
            for sub in ast.walk(comp.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        return bound

    def _visit_ordered_comp(self, node, kind: str) -> None:
        for comp in node.generators:
            self._flag_set_iteration(comp.iter, f"it feeds a {kind}")
        self._bindings.append(self._comp_bindings(node))
        self.generic_visit(node)
        self._bindings.pop()

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_ordered_comp(node, "list")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_ordered_comp(node, "dict (insertion-ordered)")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._bindings.append(self._comp_bindings(node))
        self.generic_visit(node)
        self._bindings.pop()

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # Only order-insensitive reducers typically consume generators, and
        # flagging every ``for x in set_expr`` generator would double-report
        # the ordered-consumer check below; generators are checked at their
        # consumer instead.
        self._bindings.append(self._comp_bindings(node))
        self.generic_visit(node)
        self._bindings.pop()

    def _check_ordered_consumer_call(self, node: ast.Call) -> None:
        consumer: Optional[str] = None
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDERED_CONSUMERS:
            consumer = func.id
        elif isinstance(func, ast.Attribute):
            if func.attr == "join" and isinstance(func.value, (ast.Constant, ast.Name)):
                consumer = "str.join"
            elif (
                func.attr in _NP_ORDERED_CONSUMERS
                and isinstance(func.value, ast.Name)
                and func.value.id in self._numpy_aliases
            ):
                consumer = f"np.{func.attr}"
        if consumer is None or not node.args:
            return
        first = node.args[0]
        if self._is_set_expr(first):
            self._flag_set_iteration(first, f"it is materialised by {consumer}(...)")
        elif isinstance(first, ast.GeneratorExp):
            for comp in first.generators:
                self._flag_set_iteration(comp.iter, f"it is materialised by {consumer}(...)")


def check_module(
    tree: ast.Module, config: Config, *, float_rule_active: bool
) -> List[RawFinding]:
    """All raw findings for one parsed module, in source order."""
    visitor = ContractVisitor(config, float_rule_active=float_rule_active)
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.col, f.code))


def rule_summaries() -> Sequence[Tuple[str, str]]:
    return [(rule.code, rule.summary) for rule in RULES]
