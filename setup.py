"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so the package
can be installed in environments without the ``wheel`` package (offline
machines where ``pip install -e .`` cannot build a PEP 660 editable wheel):
``python setup.py develop`` falls back to the classic egg-link mechanism.
"""

from setuptools import setup

setup()
